"""Tests for the serve subsystem: index, snapshot store, service, HTTP.

The index-correctness tests cross-check every answer against the raw
:class:`OrgMapping`; the hot-swap test hammers the service from reader
threads while generations are swapped underneath them and asserts zero
failed requests; the HTTP tests exercise every endpoint contract
including the 400/404/503 paths and parse the ``/metrics`` exposition.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.mapping import OrgMapping
from repro.core.release import save_mapping_as2org
from repro.errors import (
    NoSnapshotError,
    UnknownASNError,
    UnknownOrgError,
)
from repro.obs import MetricsRegistry, use_registry
from repro.serve import (
    LoadGenerator,
    MappingIndex,
    QueryServer,
    QueryService,
    SnapshotStore,
    ZipfianSampler,
    org_handle,
    tokenize,
)


@pytest.fixture()
def registry():
    with use_registry() as reg:
        yield reg


@pytest.fixture(scope="module")
def index(borges_mapping, universe):
    return MappingIndex.build(
        borges_mapping, whois=universe.whois, pdb=universe.pdb
    )


def make_service(mapping, registry, whois=None, pdb=None) -> QueryService:
    service = QueryService(registry=registry)
    service.store.load_from_mapping(mapping, whois=whois, pdb=pdb)
    return service


# -- MappingIndex ----------------------------------------------------------


class TestMappingIndex:
    def test_every_asn_resolves_to_its_mapping_cluster(
        self, index, borges_mapping
    ):
        for asn in index.asns():
            record = index.lookup_asn(asn)
            assert set(record.org.members) == set(
                borges_mapping.cluster_of(asn)
            )
            assert record.org.name == borges_mapping.org_name_of(asn)

    def test_org_handles_follow_release_scheme(self, index, borges_mapping):
        for cluster in borges_mapping.clusters():
            handle = org_handle(min(cluster))
            assert tuple(sorted(cluster)) == index.org(handle).members

    def test_org_records_partition_the_universe(self, index, borges_mapping):
        seen = set()
        total = 0
        for asn in index.asns():
            org = index.org_of(asn)
            seen.add(org.org_id)
            total += 1
        assert total == borges_mapping.universe_size
        sizes = sum(index.org(o).size for o in seen)
        assert sizes == borges_mapping.universe_size

    def test_sibling_verdicts_match_mapping(self, index, borges_mapping):
        multi = borges_mapping.multi_asn_clusters()[0]
        a, b = sorted(multi)[:2]
        assert index.are_siblings(a, b)
        assert not index.are_siblings(a, -1)
        lonely = [
            c for c in borges_mapping.clusters() if len(c) == 1
        ][0]
        assert not index.are_siblings(a, next(iter(lonely)))

    def test_unknown_lookups_raise(self, index):
        with pytest.raises(UnknownASNError):
            index.lookup_asn(-42)
        with pytest.raises(UnknownOrgError):
            index.org("BORGES-NOPE")

    def test_search_finds_org_by_name_token(self, index):
        some_org = index.org_of(index.asns()[0])
        token = tokenize(some_org.name)[0]
        results = index.search(token, limit=50)
        assert any(r.org_id == some_org.org_id for r in results)

    def test_search_prefix_and_ranking(self, index):
        some_org = index.org_of(index.asns()[0])
        token = tokenize(some_org.name)[0]
        prefix = token[: max(2, len(token) - 1)]
        results = index.search(prefix, limit=200)
        assert any(r.org_id == some_org.org_id for r in results)
        assert index.search("", limit=5) == []
        assert index.search(token, limit=0) == []

    def test_metadata_enrichment(self, index, universe):
        asn = index.asns()[0]
        record = index.lookup_asn(asn)
        assert record.name == universe.whois.delegations[asn].name
        assert record.org.country == universe.whois.org_of(
            min(record.org.members)
        ).country


# -- SnapshotStore ---------------------------------------------------------


class TestSnapshotStore:
    def test_empty_store_raises(self, registry):
        store = SnapshotStore(registry=registry)
        with pytest.raises(NoSnapshotError):
            store.current()
        with pytest.raises(NoSnapshotError):
            store.acquire()

    def test_swap_bumps_generation_and_gauge(self, borges_mapping, registry):
        store = SnapshotStore(registry=registry)
        first = store.load_from_mapping(borges_mapping)
        second = store.load_from_mapping(borges_mapping)
        assert (first.generation, second.generation) == (1, 2)
        assert store.current() is second
        assert registry.value("serve_snapshot_swaps_total") == 2.0
        assert registry.value("serve_snapshot_generation") == 2.0

    def test_drain_waits_for_reader_leases(self, borges_mapping, registry):
        store = SnapshotStore(registry=registry)
        store.load_from_mapping(borges_mapping)
        lease = store.acquire()
        old = lease.snapshot
        store.load_from_mapping(borges_mapping)
        assert store.drain(timeout=0.05) == 0  # reader still holds gen 1
        lease.__exit__(None, None, None)
        assert store.drain(timeout=1.0) == 1
        assert old is not store.current()

    def test_try_swap_keeps_old_generation_and_marks_stale(
        self, borges_mapping, registry, tmp_path
    ):
        store = SnapshotStore(registry=registry)
        good = store.load_from_mapping(borges_mapping)
        result = store.try_swap(
            lambda: store.load_from_release_file(tmp_path / "missing.jsonl"),
            label="missing file",
        )
        assert result is None
        assert store.current() is good
        assert store.stale
        assert registry.value("serve_snapshot_swap_failures_total") == 1.0
        # a successful swap clears the stale flag
        store.load_from_mapping(borges_mapping)
        assert not store.stale

    def test_release_file_round_trip(
        self, borges_mapping, universe, registry, tmp_path
    ):
        path = tmp_path / "release.jsonl"
        save_mapping_as2org(borges_mapping, universe.whois, path)
        store = SnapshotStore(registry=registry)
        snapshot = store.load_from_release_file(path)
        index = snapshot.index
        assert index.asn_count == borges_mapping.universe_size
        for cluster in borges_mapping.multi_asn_clusters()[:10]:
            members = sorted(cluster)
            assert index.are_siblings(members[0], members[-1])
            assert index.org_of(members[0]).members == tuple(members)

    def test_mapping_file_round_trip(self, borges_mapping, registry, tmp_path):
        path = tmp_path / "mapping.json"
        borges_mapping.save(path)
        store = SnapshotStore(registry=registry)
        index = store.load_from_mapping_file(path).index
        asn = index.asns()[0]
        assert set(index.org_of(asn).members) == set(
            borges_mapping.cluster_of(asn)
        )

    def test_artifact_store_source(self, borges_mapping, registry):
        from repro.core.artifacts import ArtifactStore, make_artifact

        artifacts = ArtifactStore()
        artifact = make_artifact(
            "merge", "f" * 64, borges_mapping.to_json()
        )
        artifacts.put(artifact)
        store = SnapshotStore(registry=registry)
        snapshot = store.load_from_artifact_store(artifacts, "f" * 64)
        assert snapshot.index.asn_count == borges_mapping.universe_size


# -- QueryService ----------------------------------------------------------


class TestQueryService:
    def test_lookup_matches_index_and_caches(self, borges_mapping, registry):
        service = make_service(borges_mapping, registry)
        asn = service.store.current().index.asns()[0]
        first = service.lookup_asn(asn)
        second = service.lookup_asn(asn)
        assert first == second
        assert service._cache.stats()["hits"] == 1
        assert registry.value(
            "serve_requests_total", endpoint="asn", status="ok"
        ) == 2.0

    def test_batch_lookup_tolerates_unknowns(self, borges_mapping, registry):
        service = make_service(borges_mapping, registry)
        asns = service.store.current().index.asns()[:3]
        out = service.batch_lookup(asns + [-5])
        assert [r.get("asn") for r in out] == asns + [-5]
        assert out[-1]["error"] == "unknown_asn"

    def test_unavailable_before_first_snapshot(self, registry):
        service = QueryService(registry=registry)
        with pytest.raises(NoSnapshotError):
            service.lookup_asn(1)
        ready, body = service.health()
        assert not ready and body["status"] == "unavailable"

    def test_swap_invalidates_cache_via_generation(
        self, borges_mapping, registry
    ):
        service = make_service(borges_mapping, registry)
        asn = service.store.current().index.asns()[0]
        assert service.lookup_asn(asn)["generation"] == 1
        service.store.load_from_mapping(borges_mapping)
        assert service.lookup_asn(asn)["generation"] == 2

    def test_latency_histogram_uses_submillisecond_buckets(
        self, borges_mapping, registry
    ):
        service = make_service(borges_mapping, registry)
        service.lookup_asn(service.store.current().index.asns()[0])
        hist = service._latency["asn"]
        assert hist.buckets[0] < 0.001
        assert hist.count == 1
        # an in-memory lookup must land below the 1 ms bound, not in the
        # pipeline-scale tail the old default buckets started at
        sub_ms = sum(
            count
            for bound, count in zip(hist.buckets, hist.bucket_counts)
            if bound <= 0.001
        )
        assert sub_ms == 1

    def test_hot_swap_under_concurrent_readers(self, borges_mapping, registry):
        """Readers never see a half-loaded snapshot or a failed request."""
        service = make_service(borges_mapping, registry)
        asns = service.store.current().index.asns()[:64]
        errors: list = []
        generations = set()
        stop = threading.Event()

        def reader() -> None:
            i = 0
            while not stop.is_set():
                try:
                    response = service.lookup_asn(asns[i % len(asns)])
                    generations.add(response["generation"])
                    if i % 7 == 0:
                        service.siblings(asns[0], asns[1])
                except Exception as exc:  # noqa: BLE001 — test collects all
                    errors.append(exc)
                    return
                i += 1

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for _ in range(10):
            service.store.load_from_mapping(borges_mapping)
        stop.set()
        for t in threads:
            t.join(timeout=5.0)
        service.store.drain(timeout=1.0)
        assert errors == []
        assert len(generations) >= 2  # readers observed the swap happening

    def test_stats_shape(self, borges_mapping, registry):
        service = make_service(borges_mapping, registry)
        service.lookup_asn(service.store.current().index.asns()[0])
        stats = service.stats()
        assert stats["requests"]["asn.ok"] == 1.0
        assert stats["snapshot"]["active"]["generation"] == 1


# -- load generator --------------------------------------------------------


class TestLoadGen:
    def test_zipf_sampler_is_seeded_and_skewed(self):
        items = list(range(1, 101))
        a = list(ZipfianSampler(items, seed=9).stream(500))
        b = list(ZipfianSampler(items, seed=9).stream(500))
        assert a == b
        top = max(set(a), key=a.count)
        assert a.count(top) > 500 / 100  # far above uniform share

    def test_load_report(self, borges_mapping, registry):
        service = make_service(borges_mapping, registry)
        gen = LoadGenerator(
            service, service.store.current().index.asns(), seed=3
        )
        report = gen.run(200, sibling_fraction=0.1, unknown_fraction=0.05)
        assert report.requests == 200
        assert report.ok + report.not_found == 200
        assert report.not_found == report.mix["unknown"]
        assert report.qps > 0
        assert sum(report.mix.values()) == 200


# -- HTTP API --------------------------------------------------------------


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, json.loads(response.read())


def _get_error(url: str):
    try:
        urllib.request.urlopen(url, timeout=5)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    raise AssertionError(f"expected an HTTP error from {url}")


class TestHTTPAPI:
    @pytest.fixture()
    def server(self, borges_mapping, universe, registry):
        service = make_service(
            borges_mapping, registry, whois=universe.whois, pdb=universe.pdb
        )
        with QueryServer(service) as srv:
            yield srv

    def test_asn_endpoint_contract(self, server, borges_mapping):
        asn = server.service.store.current().index.asns()[0]
        status, body = _get(f"{server.url}/v1/asn/{asn}")
        assert status == 200
        assert body["asn"] == asn
        assert set(body["org"]["members"]) == set(
            borges_mapping.cluster_of(asn)
        )
        assert _get_error(f"{server.url}/v1/asn/999999999")[0] == 404
        assert _get_error(f"{server.url}/v1/asn/banana")[0] == 400

    def test_org_endpoint_contract(self, server):
        index = server.service.store.current().index
        handle = index.org_of(index.asns()[0]).org_id
        status, body = _get(f"{server.url}/v1/org/{handle}")
        assert status == 200 and body["org_id"] == handle
        assert _get_error(f"{server.url}/v1/org/BORGES-NOPE")[0] == 404

    def test_siblings_endpoint_contract(self, server, borges_mapping):
        a, b = sorted(borges_mapping.multi_asn_clusters()[0])[:2]
        status, body = _get(f"{server.url}/v1/siblings?a={a}&b={b}")
        assert status == 200 and body["siblings"] is True
        status, body = _get(f"{server.url}/v1/siblings?asn={a}")
        assert status == 200 and b in body["siblings"]
        assert _get_error(f"{server.url}/v1/siblings")[0] == 400
        assert _get_error(f"{server.url}/v1/siblings?a=1")[0] == 400
        assert _get_error(f"{server.url}/v1/siblings?a=x&b=2")[0] == 400

    def test_search_endpoint_contract(self, server):
        index = server.service.store.current().index
        token = tokenize(index.org_of(index.asns()[0]).name)[0]
        status, body = _get(f"{server.url}/v1/search?q={token}&limit=5")
        assert status == 200
        assert len(body["results"]) <= 5
        assert _get_error(f"{server.url}/v1/search")[0] == 400

    def test_batch_endpoint(self, server):
        asns = server.service.store.current().index.asns()[:4]
        request = urllib.request.Request(
            f"{server.url}/v1/batch",
            data=json.dumps({"asns": asns}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=5) as response:
            body = json.loads(response.read())
        assert [r["asn"] for r in body["results"]] == asns

    def test_unknown_route_404(self, server):
        assert _get_error(f"{server.url}/v2/nope")[0] == 404

    def test_healthz_and_metrics(self, server, registry):
        status, body = _get(f"{server.url}/healthz")
        assert status == 200 and body["status"] == "ok"
        asn = server.service.store.current().index.asns()[0]
        _get(f"{server.url}/v1/asn/{asn}")
        with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as r:
            text = r.read().decode()
        # parse the exposition: every serve_requests_total sample must
        # carry endpoint/status labels and an integer value
        samples = {}
        for line in text.splitlines():
            if line.startswith("serve_requests_total{"):
                labels, value = line.rsplit(" ", 1)
                samples[labels] = float(value)
        assert (
            samples['serve_requests_total{endpoint="asn",status="ok"}'] >= 1
        )
        assert "serve_request_seconds_bucket" in text
        assert "serve_http_requests_total" in text

    def test_healthz_503_when_empty(self, registry):
        service = QueryService(registry=registry)
        with QueryServer(service) as srv:
            assert _get_error(f"{srv.url}/healthz")[0] == 503
            assert _get_error(f"{srv.url}/v1/asn/1")[0] == 503

    def test_admin_endpoints_404_without_slo(self, server):
        assert _get_error(f"{server.url}/v1/admin/slo")[0] == 404
        assert _get_error(f"{server.url}/v1/admin/exemplars")[0] == 404


# -- request-scoped observability over HTTP --------------------------------


def _get_traced(url: str, traceparent: str = ""):
    """GET returning (status, body, response-headers)."""
    request = urllib.request.Request(url)
    if traceparent:
        request.add_header("traceparent", traceparent)
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.status, json.loads(response.read()), response.headers


class TestObservabilityHTTP:
    @pytest.fixture()
    def server(self, borges_mapping, registry):
        from repro.obs import EventLog, ExemplarStore, SLOTracker

        slo = SLOTracker(registry=registry)
        service = QueryService(
            registry=registry,
            slo=slo,
            # threshold 0: every request becomes an exemplar
            exemplars=ExemplarStore(threshold=0.0, capacity=16),
            event_log=EventLog(),
        )
        service.store.load_from_mapping(borges_mapping)
        with QueryServer(service) as srv:
            yield srv

    def test_traceparent_round_trips_to_response_header(self, server):
        asn = server.service.store.current().index.asns()[0]
        trace_id = "4bf92f3577b34da6a3ce929d0e0e4736"
        header = f"00-{trace_id}-00f067aa0ba902b7-01"
        status, _, headers = _get_traced(
            f"{server.url}/v1/asn/{asn}", traceparent=header
        )
        assert status == 200
        assert headers["x-borges-trace-id"] == trace_id

    def test_fresh_trace_id_minted_when_absent(self, server):
        status, _, headers = _get_traced(f"{server.url}/healthz")
        assert status == 200
        minted = headers["x-borges-trace-id"]
        assert len(minted) == 32
        assert minted != "0" * 32
        assert minted == minted.lower()

    def test_access_log_carries_the_trace_id(self, server):
        asn = server.service.store.current().index.asns()[0]
        trace_id = "aaaabbbbccccddddeeeeffff00001111"
        _get_traced(
            f"{server.url}/v1/asn/{asn}",
            traceparent=f"00-{trace_id}-00f067aa0ba902b7-01",
        )
        # The access event lands after the response is written; wait out
        # the handler thread's finally block.
        mine: list = []
        deadline = time.monotonic() + 5.0
        while not mine and time.monotonic() < deadline:
            events = server.service.event_log.events("http.access")
            mine = [e for e in events if e.get("trace_id") == trace_id]
            if not mine:
                time.sleep(0.01)
        assert len(mine) == 1
        assert mine[0]["endpoint"] == "asn"
        assert mine[0]["status"] == 200
        assert mine[0]["admission"] == "admitted"

    def test_admin_slo_endpoint(self, server):
        asn = server.service.store.current().index.asns()[0]
        _get_traced(f"{server.url}/v1/asn/{asn}")
        status, body, _ = _get_traced(f"{server.url}/v1/admin/slo")
        assert status == 200
        assert body["availability"]["alert"]["state"] == "clear"
        assert body["availability"]["windows"]["fast"]["total"] >= 1
        # healthy traffic: /healthz carries the alert summary too
        _, health, _ = _get_traced(f"{server.url}/healthz")
        assert health["slo"] == {
            "availability": "clear",
            "latency": "clear",
        }

    def test_admin_exemplars_capture_span_trees(self, server):
        asn = server.service.store.current().index.asns()[0]
        trace_id = "1234567890abcdef1234567890abcdef"
        _get_traced(
            f"{server.url}/v1/asn/{asn}",
            traceparent=f"00-{trace_id}-00f067aa0ba902b7-01",
        )
        status, body, _ = _get_traced(f"{server.url}/v1/admin/exemplars")
        assert status == 200
        mine = [e for e in body["exemplars"] if e["trace_id"] == trace_id]
        assert len(mine) == 1
        spans = mine[0]["spans"]
        assert spans[0]["name"] == "http.asn"
        assert spans[0]["trace_id"] == trace_id
        assert body["stats"]["retained"] >= 1

    def test_metrics_counts_its_own_scrapes(self, server, registry):
        with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as r:
            first = r.read().decode()
            assert r.headers["Content-Type"] == "text/plain; version=0.0.4"
            assert r.headers["x-borges-trace-id"]
        # the scrape counter is bumped before rendering, so the first
        # exposition already reports itself
        assert "serve_metrics_scrapes_total 1" in first
        with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as r:
            second = r.read().decode()
        assert "serve_metrics_scrapes_total 2" in second
        assert "serve_metrics_render_seconds" in second

    def test_stats_include_latency_summary_and_slo(self, server):
        asn = server.service.store.current().index.asns()[0]
        _get_traced(f"{server.url}/v1/asn/{asn}")
        stats = server.service.stats()
        assert "slo" in stats and "exemplars" in stats
        summary = stats["latency_summary"]["asn"]
        assert summary["count"] >= 1
        assert summary["p50_us"] >= 0

    def test_top_renders_against_live_server(self, server):
        import io

        from repro.serve import run_top

        asn = server.service.store.current().index.asns()[0]
        _get_traced(f"{server.url}/v1/asn/{asn}")
        buffer = io.StringIO()
        host, port = server.url.removeprefix("http://").split(":")
        code = run_top(
            host=host,
            port=int(port),
            interval=0.01,
            iterations=2,
            clear=False,
            stream=buffer,
        )
        assert code == 0
        rendered = buffer.getvalue()
        assert "borges top" in rendered
        assert "availability" in rendered
        assert "rss" in rendered or "process" in rendered

    def test_traced_loadgen_reports_slowest(self, borges_mapping, registry):
        service = make_service(borges_mapping, registry)
        gen = LoadGenerator(
            service, service.store.current().index.asns(), seed=3
        )
        report = gen.run(100, trace=True)
        assert report.slowest, "traced runs must report slowest traces"
        assert len(report.slowest) <= 5
        latencies = [entry["latency_ms"] for entry in report.slowest]
        assert latencies == sorted(latencies, reverse=True)
        for entry in report.slowest:
            assert len(entry["trace_id"]) == 32
            assert entry["op"]
        assert "slowest" in report.to_json()

    def test_untraced_loadgen_has_no_slowest(self, borges_mapping, registry):
        service = make_service(borges_mapping, registry)
        gen = LoadGenerator(
            service, service.store.current().index.asns(), seed=3
        )
        report = gen.run(50)
        assert report.slowest == []
        assert "slowest" not in report.to_json()


# -- CLI surface -----------------------------------------------------------


class TestServeCLI:
    def test_release_then_query_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "rel.jsonl"
        with use_registry():
            assert main(["--orgs", "40", "release", "--out", str(out)]) == 0
        released = capsys.readouterr().out
        assert "released" in released and out.exists()
        with use_registry():
            assert (
                main(["query", "--snapshot", str(out), "--search", "a"]) == 0
            )
        queried = capsys.readouterr().out
        assert '"results"' in queried

    def test_query_unknown_asn_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "rel.jsonl"
        with use_registry():
            main(["--orgs", "40", "release", "--out", str(out)])
            assert main(["query", "--snapshot", str(out), "-1"]) == 1
        assert "unknown_asn" in capsys.readouterr().out

    def test_query_without_arguments_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["query"]) == 2
        assert "nothing to query" in capsys.readouterr().out


# -- perf-fix satellites ---------------------------------------------------


class TestMappingCaches:
    def test_org_name_cache_matches_uncached_semantics(self):
        mapping = OrgMapping(
            universe=[1, 2, 3, 4],
            clusters=[[1, 2], [3]],
            org_names={2: "Two Corp"},
        )
        # cluster {1,2}: lowest member with a name wins; {3},{4} fall back
        assert mapping.org_name_of(1) == "Two Corp"
        assert mapping.org_name_of(2) == "Two Corp"
        assert mapping.org_name_of(3) == "AS3"
        assert mapping.org_name_of(4) == "AS4"
        # repeated calls are served from the cached per-cluster list
        assert mapping._display_names is not None

    def test_sizes_cached_and_fresh_copies(self, borges_mapping):
        first = borges_mapping.sizes()
        second = borges_mapping.sizes()
        assert first == second
        first.append(-1)  # caller mutation must not poison the cache
        assert borges_mapping.sizes() == second

    def test_whois_siblings_index(self, universe):
        whois = universe.whois
        asn = whois.asns()[0]
        expected = {
            a
            for a, d in whois.delegations.items()
            if d.org_id == whois.org_id_of(asn)
        }
        assert whois.siblings_of(asn) == expected
        # members() hands out copies, not the cached lists
        members = whois.members()
        org_id = whois.org_id_of(asn)
        members[org_id].append(-1)
        assert -1 not in whois.members()[org_id]
