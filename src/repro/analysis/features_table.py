"""Table 3: the individual contribution of each Borges feature.

For every feature — OID_P, OID_W, notes & aka, R&R, favicons — count how
many ASNs the feature says anything about and how many organizations it
forms on its own (after consolidating overlaps within the feature).
"""

from __future__ import annotations

from typing import Dict, List

from ..config import TABLE_FEATURE_ORDER
from ..core.pipeline import BorgesResult

#: Display labels per feature; row order comes from the canonical
#: feature order in :data:`repro.config.TABLE_FEATURE_ORDER`.
_LABELS = {
    "oid_p": "OID_P",
    "oid_w": "OID_W",
    "notes_aka": "notes and aka",
    "rr": "R&R",
    "favicons": "Favicons",
}

ROW_ORDER = tuple(
    (name, _LABELS.get(name, name)) for name in TABLE_FEATURE_ORDER
)


def feature_contribution_table(result: BorgesResult) -> List[Dict[str, object]]:
    """Rows of Table 3 from one pipeline run."""
    rows: List[Dict[str, object]] = []
    for key, label in ROW_ORDER:
        feature = result.features.get(key)
        if feature is None:
            continue
        rows.append(
            {
                "source": label,
                "asns": feature.asn_count,
                "orgs": feature.org_count,
            }
        )
    return rows
