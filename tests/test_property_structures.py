"""Property-based tests for union-find, OrgMapping, URL handling, and the
extraction engine's hallucination guard."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import OrgMapping
from repro.core.merge import UnionFind, merge_clusters
from repro.errors import URLError
from repro.llm.extraction_engine import extract_siblings, find_all_numbers
from repro.web.url import normalize_url, parse_url, registrable_domain

asn_strategy = st.integers(min_value=1, max_value=60)
cluster_strategy = st.frozensets(asn_strategy, min_size=1, max_size=8)
cluster_list_strategy = st.lists(cluster_strategy, max_size=12)


@given(cluster_list_strategy)
def test_merge_produces_disjoint_partition(clusters):
    merged = merge_clusters([clusters])
    seen = set()
    for cluster in merged:
        assert not (cluster & seen)
        seen |= cluster
    assert seen == set().union(*clusters) if clusters else not seen


@given(cluster_list_strategy)
def test_merge_preserves_togetherness(clusters):
    merged = merge_clusters([clusters])
    index = {}
    for i, cluster in enumerate(merged):
        for asn in cluster:
            index[asn] = i
    for cluster in clusters:
        members = sorted(cluster)
        assert len({index[m] for m in members}) == 1


@given(cluster_list_strategy, cluster_list_strategy)
def test_merge_order_invariant(a, b):
    one = {frozenset(c) for c in merge_clusters([a, b])}
    two = {frozenset(c) for c in merge_clusters([b, a])}
    assert one == two


@given(st.lists(st.tuples(asn_strategy, asn_strategy), max_size=40))
def test_unionfind_equivalence_relation(pairs):
    forest = UnionFind()
    for a, b in pairs:
        forest.union(a, b)
    # Symmetry + transitivity: connectivity matches group membership.
    groups = forest.groups()
    index = {}
    for i, group in enumerate(groups):
        for item in group:
            index[item] = i
    for a, b in pairs:
        assert index[a] == index[b]


@given(
    st.frozensets(asn_strategy, min_size=1, max_size=40),
    cluster_list_strategy,
)
def test_mapping_always_partitions_universe(universe, clusters):
    mapping = OrgMapping(universe=universe, clusters=clusters)
    covered = set()
    for cluster in mapping.clusters():
        assert cluster <= universe
        assert not (cluster & covered)
        covered |= cluster
    assert covered == set(universe)


@given(st.frozensets(asn_strategy, min_size=1, max_size=40), cluster_list_strategy)
def test_mapping_sizes_sum_to_universe(universe, clusters):
    mapping = OrgMapping(universe=universe, clusters=clusters)
    assert sum(mapping.sizes()) == len(universe)


_host_label = st.from_regex(r"[a-z0-9]([a-z0-9-]{0,8}[a-z0-9])?", fullmatch=True)


@given(st.lists(_host_label, min_size=2, max_size=4))
def test_url_normalization_idempotent(labels):
    url = "http://" + ".".join(labels) + "/path"
    normalized = normalize_url(url)
    assert normalize_url(normalized) == normalized


@given(st.lists(_host_label, min_size=2, max_size=4))
def test_registrable_domain_is_suffix_of_host(labels):
    host = ".".join(labels)
    domain = registrable_domain(host)
    assert host.endswith(domain)


@given(st.text(max_size=200))
def test_parse_url_never_hangs_or_crashes_unexpectedly(text):
    try:
        parsed = parse_url(text)
    except URLError:
        return
    assert parsed.host
    assert parsed.scheme in ("http", "https")


@given(st.text(max_size=300), st.integers(min_value=1, max_value=2**31))
def test_extraction_never_invents_numbers(text, own_asn):
    """The core anti-hallucination invariant: every extracted sibling is a
    number literally present in the text and never the record's own ASN."""
    result = extract_siblings(own_asn, text, "")
    literal = set(find_all_numbers(text))
    for asn in result.asns:
        assert asn in literal
        assert asn != own_asn


@given(st.text(max_size=300))
def test_find_all_numbers_matches_digit_runs(text):
    numbers = find_all_numbers(text)
    assert all(isinstance(n, int) and n >= 0 for n in numbers)
    # ASCII digits must always be found (str.isdigit also accepts
    # superscripts etc., which the ASN regexes rightly ignore).
    if any(ch in "0123456789" for ch in text):
        assert numbers
