#!/usr/bin/env python3
"""Watching organizational structure evolve (the paper's future work, §7).

The paper cannot study evolution ("no longitudinal archive of websites
referenced in PeeringDB exists"); the synthetic universe has a full
corporate timeline, so this example builds historical snapshots — each
year's WHOIS/PeeringDB/web state with only the acquisitions completed by
then — runs Borges on every snapshot, and reports:

* θ and organization count per year (consolidation in numbers),
* the detected merge events between consecutive years,
* the Fig. 1-style story for the planted canonical histories
  (CenturyLink → Lumen in 2016, Clearwire → T-Mobile in 2020,
  Edgecast → Edgio in 2022).

Run:  python examples/longitudinal_evolution.py
"""

from repro.config import UniverseConfig
from repro.longitudinal import build_snapshot_series, run_longitudinal_study
from repro.universe import generate_universe
from repro.universe.canonical import (
    AS_CENTURYLINK,
    AS_CLEARWIRE,
    AS_EDGECAST,
    AS_LIMELIGHT,
    AS_LUMEN,
    AS_TMOBILE_US,
)

STORIES = {
    "CenturyLink joins Lumen (2016)": (AS_LUMEN, AS_CENTURYLINK),
    "Clearwire joins T-Mobile (2020)": (AS_CLEARWIRE, AS_TMOBILE_US),
    "Edgecast joins Edgio (2022)": (AS_EDGECAST, AS_LIMELIGHT),
}


def main() -> None:
    universe = generate_universe(UniverseConfig(n_organizations=1000))
    series = build_snapshot_series(
        universe, years=(2008, 2015, 2017, 2021, 2024)
    )
    print("building historical snapshots:", ", ".join(map(str, series.years)))
    for snapshot in series.snapshots:
        print(
            f"  as of {snapshot.year}: "
            f"{len(snapshot.pending_brand_ids)} acquisitions still pending"
        )

    report = run_longitudinal_study(series)

    print("\ntheta and organization count per year:")
    for result in report.results:
        bar = "#" * int((result.theta - 0.3) * 200)
        print(
            f"  {result.year}: theta={result.theta:.4f} "
            f"orgs={result.org_count:,}  {bar}"
        )

    print("\ncanonical merger stories (sibling verdict per year):")
    for label, (a, b) in STORIES.items():
        verdicts = [
            f"{r.year}:{'Y' if r.mapping.are_siblings(a, b) else 'n'}"
            for r in report.results
        ]
        print(f"  {label:<34} {'  '.join(verdicts)}")

    print(f"\ndetected merge events between snapshots: {len(report.merges)}")
    for event in report.merges[:8]:
        components = " + ".join(
            f"{{{', '.join(f'AS{a}' for a in sorted(c)[:3])}"
            f"{', ...' if len(c) > 3 else ''}}}"
            for c in event.prior_components[:3]
        )
        print(
            f"  {event.year_from}->{event.year_to}: {components} "
            f"=> {len(event.merged_cluster)}-network organization"
        )


if __name__ == "__main__":
    main()
