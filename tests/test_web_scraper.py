"""Unit tests for the headless-browser scraper (R&R resolution)."""

import pytest

from repro.config import ScraperConfig
from repro.web.http import RedirectKind
from repro.web.scraper import HeadlessScraper
from repro.web.simweb import SimulatedWeb


def chain_web():
    """The Fig. 5b world: clearwire → sprint → t-mobile."""
    web = SimulatedWeb()
    web.add_page("https://www.t-mobile.com/", title="T-Mobile")
    web.add_redirect(
        "https://www.sprint.com/", "https://www.t-mobile.com/",
        kind=RedirectKind.HTTP_301,
    )
    web.add_redirect(
        "https://www.clearwire.com/", "https://www.sprint.com/",
        kind=RedirectKind.HTTP_302,
    )
    web.add_redirect(
        "https://meta.example.com/", "https://www.t-mobile.com/",
        kind=RedirectKind.META_REFRESH,
    )
    web.add_redirect(
        "https://js.example.com/", "https://www.t-mobile.com/",
        kind=RedirectKind.JAVASCRIPT,
    )
    return web


class TestChainResolution:
    def test_direct_page(self):
        result = HeadlessScraper(chain_web()).resolve("https://www.t-mobile.com/")
        assert result.ok
        assert result.final_url == "https://www.t-mobile.com/"
        assert result.hops == 0

    def test_two_hop_chain(self):
        result = HeadlessScraper(chain_web()).resolve("https://www.clearwire.com/")
        assert result.ok
        assert result.final_url == "https://www.t-mobile.com/"
        assert result.chain == (
            "https://www.clearwire.com/",
            "https://www.sprint.com/",
            "https://www.t-mobile.com/",
        )
        assert result.hops == 2
        assert result.redirected

    def test_meta_refresh_followed_by_browser(self):
        result = HeadlessScraper(chain_web()).resolve("https://meta.example.com/")
        assert result.final_url == "https://www.t-mobile.com/"

    def test_javascript_followed_by_browser(self):
        result = HeadlessScraper(chain_web()).resolve("https://js.example.com/")
        assert result.final_url == "https://www.t-mobile.com/"

    def test_plain_client_ignores_meta_refresh(self):
        scraper = HeadlessScraper(chain_web(), browser=False)
        result = scraper.resolve("https://meta.example.com/")
        assert result.ok
        assert result.final_url == "https://meta.example.com/"

    def test_plain_client_still_follows_http(self):
        scraper = HeadlessScraper(chain_web(), browser=False)
        result = scraper.resolve("https://www.clearwire.com/")
        assert result.final_url == "https://www.t-mobile.com/"


class TestFailureModes:
    def test_unknown_host(self):
        result = HeadlessScraper(chain_web()).resolve("https://void.example.org/")
        assert not result.ok
        assert result.final_url is None
        assert "not found" in result.error

    def test_dead_host(self):
        web = chain_web()
        web.add_page("https://down.example.org/", alive=False)
        result = HeadlessScraper(web).resolve("https://down.example.org/")
        assert not result.ok
        assert "timed out" in result.error

    def test_bad_url(self):
        result = HeadlessScraper(chain_web()).resolve("!!!")
        assert not result.ok
        assert "bad url" in result.error

    def test_redirect_loop_detected(self):
        web = SimulatedWeb()
        web.add_redirect("https://a.example.com/", "https://b.example.com/")
        web.add_redirect("https://b.example.com/", "https://a.example.com/")
        result = HeadlessScraper(web).resolve("https://a.example.com/")
        assert not result.ok
        assert "loop" in result.error

    def test_long_chain_exceeds_hop_limit(self):
        web = SimulatedWeb()
        for i in range(20):
            web.add_redirect(
                f"https://h{i}.example.com/", f"https://h{i + 1}.example.com/"
            )
        web.add_page("https://h20.example.com/")
        scraper = HeadlessScraper(web, config=ScraperConfig(max_redirect_hops=5))
        result = scraper.resolve("https://h0.example.com/")
        assert not result.ok
        assert "exceeded" in result.error

    def test_dangling_redirect_target(self):
        web = SimulatedWeb()
        web.add_redirect("https://a.example.com/", "https://gone.example.com/")
        result = HeadlessScraper(web).resolve("https://a.example.com/")
        assert not result.ok


class TestCachingAndBulk:
    def test_results_cached(self):
        web = chain_web()
        scraper = HeadlessScraper(web)
        before = web.fetch_count
        scraper.resolve("https://www.clearwire.com/")
        mid = web.fetch_count
        scraper.resolve("https://www.clearwire.com/")
        assert web.fetch_count == mid
        assert mid > before

    def test_resolve_many_keyed_by_raw_input(self):
        scraper = HeadlessScraper(chain_web())
        results = scraper.resolve_many(
            ["www.sprint.com", "https://www.t-mobile.com/"]
        )
        assert results["www.sprint.com"].final_url == "https://www.t-mobile.com/"

    def test_stats(self):
        scraper = HeadlessScraper(chain_web())
        scraper.resolve("https://www.clearwire.com/")
        scraper.resolve("https://void.example.org/")
        stats = scraper.stats()
        assert stats["resolved"] == 2
        assert stats["reachable"] == 1
        assert stats["redirected"] == 1

    def test_relative_redirect_target(self):
        from repro.web.simweb import Site

        web = SimulatedWeb()
        web.add_site(
            Site(
                host="rel.example.com",
                redirect_kind=RedirectKind.HTTP_302,
                redirect_target="/landing",
            )
        )
        # The relative target resolves to the same host, which redirects
        # to /landing again — the scraper must detect the loop and stop.
        result = HeadlessScraper(web).resolve("https://rel.example.com/")
        assert not result.ok
        assert "loop" in result.error
