"""Chaos benchmark: θ and feature completion rate per fault profile.

Runs the full pipeline under each named fault profile (same universe,
same seeds) and reports what the chaos cost: organization factor,
fraction of enabled features that survived, injected-fault counts, and
wall time.  ``none`` and ``flaky`` must match exactly (flaky is
result-preserving by construction); ``burst``/``storm`` are allowed to
degrade but never to crash.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import BorgesConfig, ResilienceConfig
from repro.core import BorgesPipeline
from repro.metrics import org_factor_from_mapping
from repro.obs.registry import MetricsRegistry
from repro.resilience import PROFILES

#: Zero backoff: the simulators answer instantly, so sleeping between
#: retries would only measure the clock.
CHAOS_RESILIENCE = ResilienceConfig(
    llm_base_delay=0.0, llm_max_delay=0.0,
    web_base_delay=0.0, web_max_delay=0.0,
)


def run_under_profile(ctx, profile: str):
    resilience = dataclasses.replace(
        CHAOS_RESILIENCE, fault_profile=profile
    )
    config = dataclasses.replace(BorgesConfig(), resilience=resilience)
    pipeline = BorgesPipeline(
        ctx.universe.whois, ctx.universe.pdb, ctx.universe.web, config,
        registry=MetricsRegistry(),
    )
    return pipeline.run()


def completion_rate(result) -> float:
    """Enabled features that produced clusters / enabled features."""
    enabled = len(result.feature_errors) + len(
        [f for f in result.features if f != "oid_w"]
    )
    survived = len([f for f in result.features if f != "oid_w"])
    return survived / enabled if enabled else 1.0


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_chaos_profile(benchmark, ctx, profile):
    result = benchmark.pedantic(
        lambda: run_under_profile(ctx, profile), rounds=1, iterations=1
    )
    theta = org_factor_from_mapping(result.mapping)
    resilience = result.diagnostics["resilience"]
    injected = resilience.get("faults_injected", {})
    print(
        f"\nprofile={profile:<6} theta={theta:.4f} "
        f"orgs={len(result.mapping):,} "
        f"completion={completion_rate(result):.2f} "
        f"degraded={result.degraded} "
        f"faults={sum(injected.values())}"
    )
    if result.degraded:
        for name, error in sorted(result.feature_errors.items()):
            print(f"  lost {name}: {error}")
    # The degraded-run contract: chaos may cost features, never the run.
    assert len(result.mapping) > 0
    if profile in ("none", "flaky"):
        assert result.degraded is False
        assert completion_rate(result) == 1.0


def test_chaos_flaky_matches_fault_free_theta(ctx):
    """flaky's consecutive-fault cap makes it invisible in the output."""
    clean = run_under_profile(ctx, "none")
    flaky = run_under_profile(ctx, "flaky")
    assert flaky.mapping.clusters() == clean.mapping.clusters()
    assert org_factor_from_mapping(flaky.mapping) == pytest.approx(
        org_factor_from_mapping(clean.mapping)
    )
