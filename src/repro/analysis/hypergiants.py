"""Figure 9: hypergiant organization sizes under the three methods.

For each of the paper's 16 hypergiants (identified by their primary
ASN), report the number of networks in its organization under AS2Org,
as2org+, and Borges.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.mapping import OrgMapping
from ..types import ASN
from ..universe.canonical import HYPERGIANT_PRIMARY_ASNS


def hypergiant_sizes(
    as2org: OrgMapping,
    as2orgplus: OrgMapping,
    borges: OrgMapping,
    hypergiants: Optional[Dict[str, ASN]] = None,
) -> List[Dict[str, object]]:
    """One row per hypergiant: org size under each method (Fig. 9)."""
    table = hypergiants or HYPERGIANT_PRIMARY_ASNS
    rows: List[Dict[str, object]] = []
    for name in sorted(table):
        asn = table[name]
        if asn not in as2org:
            continue
        size_base = len(as2org.cluster_of(asn))
        size_plus = len(as2orgplus.cluster_of(asn))
        size_borges = len(borges.cluster_of(asn))
        rows.append(
            {
                "hypergiant": name,
                "asn": asn,
                "as2org": size_base,
                "as2org_plus": size_plus,
                "borges": size_borges,
                "gain_vs_as2org": size_borges - size_base,
            }
        )
    rows.sort(key=lambda r: (-int(r["gain_vs_as2org"]), str(r["hypergiant"])))
    return rows
