"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one pipeline switch and measures its effect on θ,
LLM cost, or validation accuracy:

* θ normalization: normalized-area vs the printed Eq. (1);
* NER input filter (digits-only dropout) — cost saver;
* NER output filter (hallucination guard) — precision saver;
* blocklists — false-merge guard;
* favicon LLM step (step 2) — recall extender;
* LLM error injection off (perfect oracle) — upper bound.
"""

import dataclasses

import pytest

from repro.config import BorgesConfig, LLMConfig
from repro.core import BorgesPipeline
from repro.metrics import org_factor_from_mapping
from repro.metrics.org_factor import org_factor


def run_pipeline(ctx, config: BorgesConfig):
    pipeline = BorgesPipeline(
        ctx.universe.whois, ctx.universe.pdb, ctx.universe.web, config
    )
    return pipeline, pipeline.run()


def test_ablation_theta_normalizations(benchmark, ctx):
    sizes = ctx.borges.sizes()
    normalized = benchmark(lambda: org_factor(sizes))
    literal = org_factor(sizes, normalization="paper_literal")
    print(f"\ntheta normalized={normalized:.4f}  paper-literal={literal:.4f}")
    # Eq. (1) as printed is bounded by 0.5 and halves the normalized form
    # asymptotically — the discrepancy DESIGN.md documents.
    assert literal < normalized
    assert literal <= 0.5


def test_ablation_ner_input_filter_saves_llm_calls(benchmark, ctx):
    def run(input_filter: bool) -> int:
        config = dataclasses.replace(
            BorgesConfig().with_features("notes_aka"),
            ner_input_filter=input_filter,
        )
        pipeline, _result = run_pipeline(ctx, config)
        return pipeline.client.request_count

    with_filter = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    without_filter = run(False)
    print(f"\nLLM calls: filter on={with_filter}  off={without_filter}")
    # The dropout filter must cut model calls by a large factor (the
    # paper: only 2,916 of 17,633 non-empty records carry digits).
    assert with_filter < 0.5 * without_filter


def test_ablation_output_filter_guards_hallucinations(benchmark, ctx):
    def theta(output_filter: bool) -> float:
        config = dataclasses.replace(
            BorgesConfig(), ner_output_filter=output_filter
        )
        _pipeline, result = run_pipeline(ctx, config)
        return org_factor_from_mapping(result.mapping)

    guarded = benchmark.pedantic(lambda: theta(True), rounds=1, iterations=1)
    unguarded = theta(False)
    print(f"\ntheta: output filter on={guarded:.4f}  off={unguarded:.4f}")
    # The guard only ever removes (never adds) sibling candidates.
    assert guarded <= unguarded + 1e-9


def test_ablation_blocklists_prevent_false_merges(benchmark, ctx):
    def run(apply: bool):
        config = dataclasses.replace(BorgesConfig(), apply_blocklists=apply)
        _pipeline, result = run_pipeline(ctx, config)
        return result.mapping

    with_lists = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    without_lists = run(False)
    theta_with = org_factor_from_mapping(with_lists)
    theta_without = org_factor_from_mapping(without_lists)
    print(f"\ntheta: blocklists on={theta_with:.4f}  off={theta_without:.4f}")
    # Without the blocklists, unrelated networks pointing at the same
    # platform merge: θ inflates and the platform mega-cluster appears.
    assert theta_without >= theta_with
    assert max(without_lists.sizes()) >= max(with_lists.sizes())


def test_ablation_favicon_llm_step_extends_recall(benchmark, ctx):
    def favicon_asns(llm_step: bool) -> int:
        config = dataclasses.replace(
            BorgesConfig().with_features("favicons"),
            favicon_llm_step=llm_step,
        )
        _pipeline, result = run_pipeline(ctx, config)
        return result.features["favicons"].asn_count

    with_llm = benchmark.pedantic(
        lambda: favicon_asns(True), rounds=1, iterations=1
    )
    without_llm = favicon_asns(False)
    print(f"\nfavicon-grouped ASNs: LLM step on={with_llm}  off={without_llm}")
    # Step 2 recovers groups whose brand tokens differ (Claro, Telekom...).
    assert with_llm > without_llm


def test_ablation_perfect_oracle_upper_bound(benchmark, ctx):
    def accuracy(error_rate: float) -> float:
        from repro.analysis import validate_extraction
        from repro.core.ner import NERModule
        from repro.llm.simulated import make_default_client

        llm = LLMConfig(
            extraction_error_rate=error_rate, classifier_error_rate=0.0
        )
        ner = NERModule(make_default_client(llm), BorgesConfig(llm=llm))
        validation = validate_extraction(
            ner, ctx.universe.pdb, ctx.universe.annotations
        )
        return validation.counts.accuracy

    calibrated = benchmark.pedantic(
        lambda: accuracy(LLMConfig().extraction_error_rate),
        rounds=1,
        iterations=1,
    )
    oracle = accuracy(0.0)
    print(f"\nextraction accuracy: calibrated={calibrated:.3f}  oracle={oracle:.3f}")
    # Removing injected errors lifts accuracy toward the engine's ceiling.
    assert oracle >= calibrated
    assert oracle >= 0.97
