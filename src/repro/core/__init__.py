"""Borges core: the paper's primary contribution.

Four sibling-inference features over PeeringDB/WHOIS/web inputs —
organization keys (§4.1), LLM-based notes/aka extraction (§4.2), final-URL
matching and favicon classification (§4.3) — consolidated into one
AS-to-Organization mapping by transitive merging.
"""

from .artifacts import Artifact, ArtifactStore, compute_fingerprint
from .evidence import Evidence, MappingExplainer, collect_evidence
from .executor import ExecutionOutcome, StageExecutor, StageRecord
from .mapping import OrgMapping
from .merge import UnionFind, merge_clusters, reduce_shard_clusters
from .org_keys import oid_p_clusters, oid_w_clusters
from .ner import NERModule, NERRecordResult
from .partition import PartitionPlan, Shard, partition_universe, validate_partition
from .stages import ALL_STAGES, StageContext, StageSpec, build_stage_graph
from .web_inference import WebInferenceModule, WebInferenceResult
from .pipeline import (
    BorgesPipeline,
    BorgesResult,
    FeatureClusters,
    ShardedBorgesResult,
    run_sharded,
)

__all__ = [
    "Artifact",
    "ArtifactStore",
    "compute_fingerprint",
    "Evidence",
    "MappingExplainer",
    "collect_evidence",
    "ExecutionOutcome",
    "StageExecutor",
    "StageRecord",
    "OrgMapping",
    "UnionFind",
    "merge_clusters",
    "reduce_shard_clusters",
    "oid_p_clusters",
    "oid_w_clusters",
    "PartitionPlan",
    "Shard",
    "partition_universe",
    "validate_partition",
    "NERModule",
    "NERRecordResult",
    "ALL_STAGES",
    "StageContext",
    "StageSpec",
    "build_stage_graph",
    "WebInferenceModule",
    "WebInferenceResult",
    "BorgesPipeline",
    "BorgesResult",
    "FeatureClusters",
    "ShardedBorgesResult",
    "run_sharded",
]
