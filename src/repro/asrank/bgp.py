"""BGP route propagation over the AS topology (valley-free simulation).

The paper's opening frames AS-level research as built on "heuristics to
infer these connections from public BGP data sources such as RouteViews
and RIPE RIS".  This module is that substrate's data source: it simulates
Gao-Rexford route propagation over the synthetic topology and emits the
AS paths a route collector would record, so relationship-inference
heuristics (see :mod:`repro.asrank.relationship_inference`) can be run
and validated against the known ground-truth edges.

Export policy (the valley-free rules):

* routes learned from a **customer** are exported to everyone;
* routes learned from a **peer** or **provider** are exported only to
  customers.

Equivalently, every propagated path is customer→provider hops (uphill),
at most one peer hop, then provider→customer hops (downhill).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..logutil import get_logger
from ..types import ASN
from .topology import ASTopology

_LOG = get_logger("asrank.bgp")

#: How a route was learned, ordered by export preference.
_FROM_CUSTOMER = 0
_FROM_PEER = 1
_FROM_PROVIDER = 2


@dataclass(frozen=True)
class RouteAnnouncement:
    """One path a collector recorded: collector-side first, origin last."""

    path: Tuple[ASN, ...]

    @property
    def origin(self) -> ASN:
        return self.path[-1]

    @property
    def collector_peer(self) -> ASN:
        return self.path[0]


def propagate_routes(
    topology: ASTopology,
    origin: ASN,
    max_paths: Optional[int] = None,
) -> Dict[ASN, Tuple[Tuple[ASN, ...], int]]:
    """Best valley-free path from every AS toward *origin*.

    Returns ``{asn: (path, learned_from)}`` where ``path`` starts at
    ``asn`` and ends at ``origin``.  Route selection prefers
    customer-learned > peer-learned > provider-learned, then shorter
    paths, then lower next-hop ASN (a deterministic tiebreak standing in
    for real BGP's decision process).
    """
    # Dijkstra-like exploration with the (relation, length) preference.
    best: Dict[ASN, Tuple[int, int, Tuple[ASN, ...]]] = {
        origin: (_FROM_CUSTOMER, 0, (origin,))
    }
    heap: List[Tuple[int, int, Sequence[ASN]]] = [(_FROM_CUSTOMER, 0, (origin,))]
    while heap:
        relation, length, path = heapq.heappop(heap)
        node = path[0]
        current = best.get(node)
        if current is None or (relation, length) > current[:2]:
            continue
        # Who does `node` export this route to, per valley-free rules?
        exports: List[Tuple[ASN, int]] = []
        # Providers and peers receive only customer-learned routes.
        if relation == _FROM_CUSTOMER:
            exports.extend(
                (provider, _FROM_CUSTOMER)
                for provider in topology.providers_of(node)
            )
            exports.extend(
                (peer, _FROM_PEER) for peer in topology.peers_of(node)
            )
        # Customers always receive the route (they learn it from their
        # provider).
        exports.extend(
            (customer, _FROM_PROVIDER)
            for customer in topology.customers_of(node)
        )
        for neighbour, learned in exports:
            if neighbour in path:
                continue  # loop prevention (AS_PATH check)
            candidate = (learned, length + 1, (neighbour,) + tuple(path))
            existing = best.get(neighbour)
            if existing is None or candidate[:2] < existing[:2]:
                best[neighbour] = candidate
                heapq.heappush(heap, candidate)
    return {
        asn: (path, relation)
        for asn, (relation, _length, path) in best.items()
        if asn != origin
    }


def collect_paths(
    topology: ASTopology,
    collectors: Sequence[ASN],
    origins: Optional[Iterable[ASN]] = None,
) -> List[RouteAnnouncement]:
    """The RouteViews-style dump: per origin, the path each collector sees.

    ``collectors`` are the ASes hosting collector sessions (real
    collectors peer with many ASes; here the collector sits inside the
    AS).  One announcement per (collector, origin) pair that has a route.
    """
    origins = list(origins) if origins is not None else topology.asns()
    announcements: List[RouteAnnouncement] = []
    for origin in origins:
        table = propagate_routes(topology, origin)
        for collector in collectors:
            entry = table.get(collector)
            if entry is None:
                continue
            path, _relation = entry
            announcements.append(RouteAnnouncement(path=tuple(path)))
    _LOG.debug(
        "collected %d announcements from %d collectors",
        len(announcements), len(collectors),
    )
    return announcements


def is_valley_free(
    topology: ASTopology, path: Sequence[ASN]
) -> bool:
    """Check a path against the Gao-Rexford pattern (ground-truth edges).

    Reading the path from the collector side to the origin, the reverse
    direction (origin → collector) must be uphill (c2p) hops, at most one
    peer hop, then downhill (p2c) hops.
    """
    # Walk origin → collector.
    hops = list(reversed(path))
    phase = "up"
    for a, b in zip(hops, hops[1:]):
        if b in topology.providers_of(a):
            kind = "up"
        elif b in topology.peers_of(a):
            kind = "peer"
        elif b in topology.customers_of(a):
            kind = "down"
        else:
            return False  # not an edge at all
        if phase == "up":
            phase = kind
        elif phase == "peer":
            if kind != "down":
                return False
            phase = "down"
        elif phase == "down" and kind != "down":
            return False
    return True
