"""AS-Rank: ordering ASes by customer-cone size.

Mirrors CAIDA's AS-Rank semantics at the granularity Fig. 8 needs: rank 1
is the AS with the largest customer cone; ties break by transit degree,
then by ASN for determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import UnknownASNError
from ..types import ASN
from .cone import cone_sizes
from .topology import ASTopology


@dataclass(frozen=True)
class RankEntry:
    """One row of the AS-Rank table."""

    rank: int
    asn: ASN
    cone_size: int
    degree: int


class ASRank:
    """An immutable rank table with lookup both ways."""

    def __init__(self, entries: List[RankEntry]) -> None:
        self._entries = list(entries)
        self._by_asn: Dict[ASN, RankEntry] = {e.asn: e for e in entries}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def entry(self, asn: ASN) -> RankEntry:
        try:
            return self._by_asn[asn]
        except KeyError:
            raise UnknownASNError(asn) from None

    def rank_of(self, asn: ASN) -> int:
        return self.entry(asn).rank

    def rank_of_or_none(self, asn: ASN) -> Optional[int]:
        entry = self._by_asn.get(asn)
        return entry.rank if entry else None

    def top(self, n: int) -> List[RankEntry]:
        return self._entries[:n]

    def asns_in_rank_order(self) -> List[ASN]:
        return [e.asn for e in self._entries]

    def best_ranked(self, asns) -> Optional[RankEntry]:
        """The best (lowest-rank) entry among *asns*; None if none ranked."""
        best: Optional[RankEntry] = None
        for asn in asns:
            entry = self._by_asn.get(asn)
            if entry and (best is None or entry.rank < best.rank):
                best = entry
        return best


def compute_rank(topology: ASTopology) -> ASRank:
    """Compute the full AS-Rank table for *topology*."""
    sizes = cone_sizes(topology)
    ordered = sorted(
        sizes,
        key=lambda asn: (-sizes[asn], -topology.degree(asn), asn),
    )
    entries = [
        RankEntry(
            rank=i + 1,
            asn=asn,
            cone_size=sizes[asn],
            degree=topology.degree(asn),
        )
        for i, asn in enumerate(ordered)
    ]
    return ASRank(entries)
