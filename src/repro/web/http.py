"""Simulated HTTP semantics.

The scraper needs the behaviours a headless browser observes in the wild:
HTTP 30x ``Location`` redirects, HTML ``<meta http-equiv="refresh">``
refreshes, and JavaScript ``window.location`` rewrites.  The paper groups
all three under "refreshes and redirects" (R&R); we model each so the
ablation "plain HTTP client vs headless browser" is meaningful (a plain
client follows only 30x, a browser follows all three).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Dict, Optional


class RedirectKind(enum.Enum):
    """How a page sends the visitor elsewhere."""

    NONE = "none"
    HTTP_301 = "http_301"
    HTTP_302 = "http_302"
    META_REFRESH = "meta_refresh"
    JAVASCRIPT = "javascript"

    @property
    def is_http(self) -> bool:
        return self in (RedirectKind.HTTP_301, RedirectKind.HTTP_302)

    @property
    def needs_browser(self) -> bool:
        """True when only a rendering browser would follow it."""
        return self in (RedirectKind.META_REFRESH, RedirectKind.JAVASCRIPT)


_META_REFRESH_RE = re.compile(
    r"<meta[^>]+http-equiv=[\"']refresh[\"'][^>]+content=[\"']\s*\d+\s*;\s*"
    r"url=([^\"'>\s]+)",
    re.IGNORECASE,
)
_JS_LOCATION_RE = re.compile(
    r"window\.location(?:\.href)?\s*=\s*[\"']([^\"']+)[\"']",
    re.IGNORECASE,
)


@dataclass
class HTTPResponse:
    """One simulated HTTP exchange."""

    url: str
    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: str = ""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 303, 307, 308)

    @property
    def location(self) -> Optional[str]:
        if not self.is_redirect:
            return None
        return self.headers.get("Location") or self.headers.get("location")

    def meta_refresh_target(self) -> Optional[str]:
        """Target of an HTML meta-refresh in the body, if any."""
        match = _META_REFRESH_RE.search(self.body)
        return match.group(1) if match else None

    def javascript_target(self) -> Optional[str]:
        """Target of a JS ``window.location`` rewrite in the body, if any."""
        match = _JS_LOCATION_RE.search(self.body)
        return match.group(1) if match else None

    def browser_redirect_target(self) -> Optional[str]:
        """Any client-side redirect a rendering browser would follow."""
        return self.meta_refresh_target() or self.javascript_target()


def render_redirect_body(kind: RedirectKind, target: str, title: str = "") -> str:
    """Produce the HTML body a site with a client-side redirect serves."""
    if kind == RedirectKind.META_REFRESH:
        return (
            "<html><head>"
            f"<title>{title}</title>"
            f'<meta http-equiv="refresh" content="0; url={target}">'
            "</head><body>Redirecting...</body></html>"
        )
    if kind == RedirectKind.JAVASCRIPT:
        return (
            "<html><head>"
            f"<title>{title}</title>"
            f'<script>window.location.href = "{target}";</script>'
            "</head><body>Loading...</body></html>"
        )
    raise ValueError(f"{kind} is not a client-side redirect")


def render_page_body(title: str, favicon_path: str = "/favicon.ico") -> str:
    """Produce a plain landing-page body with a favicon link."""
    return (
        "<html><head>"
        f"<title>{title}</title>"
        f'<link rel="icon" href="{favicon_path}">'
        f"</head><body><h1>{title}</h1></body></html>"
    )


def make_redirect_response(url: str, kind: RedirectKind, target: str) -> HTTPResponse:
    """Build the :class:`HTTPResponse` a redirecting site serves."""
    if kind == RedirectKind.HTTP_301:
        return HTTPResponse(url=url, status=301, headers={"Location": target})
    if kind == RedirectKind.HTTP_302:
        return HTTPResponse(url=url, status=302, headers={"Location": target})
    if kind.needs_browser:
        return HTTPResponse(
            url=url, status=200, body=render_redirect_body(kind, target)
        )
    raise ValueError(f"{kind} does not describe a redirect")
