"""Unit tests for the OpenAI-compatible backend adapter (wire format)."""

import json

import pytest

from repro.config import LLMConfig
from repro.errors import LLMBackendError
from repro.llm.client import ChatMessage, ImageContent, TextContent
from repro.llm.openai_compat import OpenAICompatBackend, message_to_wire


class TestWireFormat:
    def test_string_message(self):
        wire = message_to_wire(ChatMessage(role="user", content="hi"))
        assert wire == {"role": "user", "content": "hi"}

    def test_block_message(self):
        message = ChatMessage(
            role="user",
            content=[TextContent(text="t"), ImageContent(data=b"ICO:x")],
        )
        wire = message_to_wire(message)
        blocks = wire["content"]
        assert blocks[0] == {"type": "text", "text": "t"}
        assert blocks[1]["type"] == "image_url"
        assert blocks[1]["image_url"]["url"].startswith("data:image/jpeg;base64,")

    def test_wire_is_json_serializable(self):
        message = ChatMessage(
            role="user", content=[ImageContent(data=b"\x00\x01")]
        )
        json.dumps(message_to_wire(message))


class TestContentExtraction:
    def test_valid_payload(self):
        body = {"choices": [{"message": {"content": "hello"}}]}
        assert OpenAICompatBackend._extract_content(body) == "hello"

    def test_missing_choices(self):
        with pytest.raises(LLMBackendError):
            OpenAICompatBackend._extract_content({})

    def test_empty_choices(self):
        with pytest.raises(LLMBackendError):
            OpenAICompatBackend._extract_content({"choices": []})

    def test_non_string_content(self):
        body = {"choices": [{"message": {"content": 42}}]}
        with pytest.raises(LLMBackendError):
            OpenAICompatBackend._extract_content(body)


class TestOfflineBehaviour:
    def test_unreachable_endpoint_raises_backend_error(self):
        backend = OpenAICompatBackend(
            base_url="http://127.0.0.1:1/v1", timeout_seconds=0.2
        )
        with pytest.raises(LLMBackendError):
            backend.complete(
                [ChatMessage(role="user", content="hi")], LLMConfig()
            )

    def test_headers_include_bearer(self):
        backend = OpenAICompatBackend(base_url="http://x.example/v1", api_key="sk-1")
        assert backend._headers()["Authorization"] == "Bearer sk-1"

    def test_headers_without_key(self):
        backend = OpenAICompatBackend(base_url="http://x.example/v1")
        assert "Authorization" not in backend._headers()
