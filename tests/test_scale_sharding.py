"""Scale features: sharded stage-DAG execution + streaming generation.

The contract under test is *exactness*: sharding and streaming are pure
execution strategies.  A sharded run's mapping must be byte-identical
to the single-shot run's, and a streamed export's files byte-identical
to the collect-all export's — for any shard count, chunk size and seed.
"""

from __future__ import annotations

import json

import pytest

from repro.config import TEST_UNIVERSE, BorgesConfig, UniverseConfig
from repro.core import (
    BorgesPipeline,
    merge_clusters,
    partition_universe,
    reduce_shard_clusters,
    run_sharded,
    validate_partition,
)
from repro.digest import stable_digest
from repro.obs import PEAK_RSS_GAUGE, MetricsRegistry, Tracer
from repro.peeringdb import save_snapshot
from repro.universe import (
    export_universe_streaming,
    generate_universe,
)
from repro.universe.stream import (
    assemble_universe,
    build_plan,
    materialize_chunk,
    stream_chunks,
)
from repro.whois import save_as2org_file

SMALL = UniverseConfig(seed=3, n_organizations=100)


def mapping_bytes(mapping, tmp_path, name):
    path = tmp_path / name
    mapping.save(path)
    return path.read_bytes()


# -- partitioner ------------------------------------------------------------


def test_partition_is_exact_cover(universe):
    plan = partition_universe(universe.whois, universe.pdb, universe.web, 4)
    validate_partition(plan, universe.whois.asns())
    assert len(plan.shards) == 4
    assert plan.n_asns >= len(universe.whois)
    assert sum(len(shard) for shard in plan.shards) == plan.n_asns
    assert sum(shard.components for shard in plan.shards) == plan.n_components


def test_partition_is_balanced(universe):
    plan = partition_universe(universe.whois, universe.pdb, universe.web, 4)
    sizes = sorted(len(shard) for shard in plan.shards)
    # Greedy largest-first packing: no shard exceeds the smallest by
    # more than one largest component.
    assert sizes[-1] - sizes[0] <= plan.largest_component


def test_partition_with_more_shards_than_components(universe):
    plan = partition_universe(
        universe.whois, universe.pdb, universe.web, 10_000
    )
    validate_partition(plan, universe.whois.asns())
    assert len(plan.shards) <= plan.n_components
    summary = plan.summary()
    assert summary["requested_shards"] == 10_000
    assert summary["shards"] == len(plan.shards)


def test_partition_bridges_out_of_universe_numbers():
    # Regression: two nets whose notes share a number that is NOT a
    # universe ASN must co-shard.  The merge stage unions raw extraction
    # clusters before OrgMapping drops non-universe members, so the
    # bogus number transitively bridges the two clusters in a
    # single-shot run — first seen as a 2-org divergence at 100k ASNs.
    from repro.core.partition import connected_components
    from repro.peeringdb import Network, Organization, PDBSnapshot
    from repro.whois import ASNDelegation, WhoisDataset, WhoisOrg

    whois = WhoisDataset.build(
        orgs=[
            WhoisOrg(org_id="WO-A", name="Org A"),
            WhoisOrg(org_id="WO-B", name="Org B"),
        ],
        delegations=[
            ASNDelegation(asn=100001, org_id="WO-A"),
            ASNDelegation(asn=100101, org_id="WO-B"),
        ],
    )
    pdb = PDBSnapshot.build(
        orgs=[
            Organization(org_id=1, name="Org A"),
            Organization(org_id=2, name="Org B"),
        ],
        nets=[
            Network(asn=100001, name="Net A", org_id=1,
                    notes="formerly operated as 1996"),
            Network(asn=100101, name="Net B", org_id=2,
                    notes="sibling of network 1996"),
        ],
    )
    assert 1996 not in whois.asns()
    components = connected_components(whois, pdb, None)
    assert [100001, 100101] in components


def test_partition_rejects_bad_shard_count(universe):
    with pytest.raises(Exception):
        partition_universe(universe.whois, universe.pdb, universe.web, 0)


# -- sharded execution: byte identity ---------------------------------------


def test_sharded_mapping_byte_identical(universe, borges_result, tmp_path):
    reference = mapping_bytes(borges_result.mapping, tmp_path, "ref.json")
    for n_shards in (2, 4, 7):
        result = run_sharded(
            universe.whois,
            universe.pdb,
            universe.web,
            BorgesConfig(),
            n_shards=n_shards,
        )
        produced = mapping_bytes(
            result.mapping, tmp_path, f"sharded-{n_shards}.json"
        )
        assert produced == reference, f"shards={n_shards} diverged"
        assert not result.degraded
        assert len(result.shard_results) == len(result.partition.shards)


@pytest.mark.parametrize("seed", [3, 11, 19])
def test_sharded_byte_identity_across_seeds(seed, tmp_path):
    config = UniverseConfig(seed=seed, n_organizations=100)
    u = generate_universe(config)
    single = BorgesPipeline(u.whois, u.pdb, u.web, BorgesConfig()).run()
    reference = mapping_bytes(single.mapping, tmp_path, f"ref-{seed}.json")
    for n_shards in (1, 2, 7):
        result = run_sharded(
            u.whois, u.pdb, u.web, BorgesConfig(), n_shards=n_shards
        )
        produced = mapping_bytes(
            result.mapping, tmp_path, f"s{seed}-n{n_shards}.json"
        )
        assert produced == reference, f"seed={seed} shards={n_shards}"


def test_sharded_respects_stage_subset(universe, tmp_path):
    config = BorgesConfig()
    single = BorgesPipeline(universe.whois, universe.pdb, universe.web, config)
    reference = mapping_bytes(
        single.run(stages=["oid_p"]).mapping, tmp_path, "ref.json"
    )
    result = run_sharded(
        universe.whois,
        universe.pdb,
        universe.web,
        config,
        n_shards=3,
        stages=["oid_p"],
    )
    assert mapping_bytes(result.mapping, tmp_path, "sub.json") == reference


# -- sharded execution: observability ---------------------------------------


def test_sharded_metrics_and_diagnostics(universe):
    registry = MetricsRegistry()
    tracer = Tracer()
    result = run_sharded(
        universe.whois,
        universe.pdb,
        universe.web,
        BorgesConfig(),
        n_shards=3,
        registry=registry,
        tracer=tracer,
    )
    assert registry.value("pipeline_shards") == 3
    for shard in range(3):
        assert (
            registry.value(
                "pipeline_stage_runs_total",
                shard=str(shard),
                stage="merge",
                outcome="ok",
            )
            == 1
        )
    assert registry.value(PEAK_RSS_GAUGE) > 0

    diagnostics = result.diagnostics
    assert diagnostics["partition"]["shards"] == 3
    assert len(diagnostics["shards"]) == 3
    assert diagnostics["peak_rss_bytes"] > 0
    assert diagnostics["llm_requests"] > 0
    shards_seen = {record["shard"] for record in result.stage_records}
    assert shards_seen == {0, 1, 2}

    names = [span.name for span in tracer.spans()]
    assert "pipeline.sharded" in names
    sharded = next(s for s in tracer.spans() if s.name == "pipeline.sharded")
    child_names = {child.name for child in sharded.children}
    assert "pipeline.partition" in child_names
    assert "pipeline.reduce" in child_names


def test_sharded_warm_rerun_is_cached_per_shard(universe, tmp_path):
    from repro.core import ArtifactStore

    store = ArtifactStore(root=tmp_path / "cache")
    config = BorgesConfig()
    first = run_sharded(
        universe.whois, universe.pdb, universe.web, config,
        n_shards=2, artifact_store=store,
    )
    assert all(r["status"] == "ok" for r in first.stage_records)
    second = run_sharded(
        universe.whois, universe.pdb, universe.web, config,
        n_shards=2, artifact_store=store,
    )
    assert all(r["status"] == "cached" for r in second.stage_records)
    assert mapping_bytes(second.mapping, tmp_path, "second.json") == (
        mapping_bytes(first.mapping, tmp_path, "first.json")
    )


# -- the associative reduce -------------------------------------------------


def test_reduce_shard_clusters_matches_global_merge():
    shard_a = [[1, 2], [3, 4, 5]]
    shard_b = [[6, 7], [8]]
    shard_c = [[9, 10], [11, 12]]
    global_merge = merge_clusters([shard_a, shard_b, shard_c])
    reduced = reduce_shard_clusters(
        [merge_clusters([shard]) for shard in (shard_a, shard_b, shard_c)]
    )
    assert reduced == global_merge


def test_reduce_tolerates_cross_shard_overlap():
    # Defense in depth: an imperfect partition (clusters sharing ASNs
    # across shards) must degrade to correct-but-slower, never wrong.
    reduced = reduce_shard_clusters([[[1, 2]], [[2, 3]], [[4]]])
    assert frozenset({1, 2, 3}) in reduced
    assert frozenset({4}) in reduced


# -- restricted datasets ----------------------------------------------------


def test_pdb_restricted_to(universe):
    pdb = universe.pdb
    keep = sorted(pdb.nets)[: len(pdb.nets) // 2]
    sub = pdb.restricted_to(keep)
    assert sorted(sub.nets) == sorted(keep)
    for asn in keep:
        assert sub.nets[asn] == pdb.nets[asn]
    assert set(sub.orgs) == {net.org_id for net in sub.nets.values()}
    assert sub.meta == pdb.meta


# -- streaming generation ---------------------------------------------------


def test_generate_equals_assembled_stream():
    generated = generate_universe(SMALL)
    plan = build_plan(SMALL)
    streamed = assemble_universe(plan, stream_chunks(plan))
    assert streamed.whois.content_digest() == generated.whois.content_digest()
    assert streamed.pdb.content_digest() == generated.pdb.content_digest()
    assert streamed.web.content_digest() == generated.web.content_digest()
    assert streamed.apnic.to_csv() == generated.apnic.to_csv()


def test_chunks_materialize_independently():
    plan = build_plan(SMALL, chunk_size=20)
    assert plan.n_chunks > 2
    for index in (0, 1, plan.n_chunks - 1):
        first = materialize_chunk(plan, index)
        again = materialize_chunk(plan, index)
        assert stable_digest(
            [d.to_json() for d in first.delegations]
        ) == stable_digest([d.to_json() for d in again.delegations])
        assert stable_digest(
            [n.to_json() for n in first.nets]
        ) == stable_digest([n.to_json() for n in again.nets])


# -- streaming export -------------------------------------------------------

DATASET_FILES = (
    "peeringdb_snapshot.json",
    "as2org.jsonl",
    "apnic_population.csv",
)


def _collect_all_export(universe, out):
    out.mkdir(parents=True, exist_ok=True)
    save_snapshot(universe.pdb, out / "peeringdb_snapshot.json")
    save_as2org_file(universe.whois, out / "as2org.jsonl")
    universe.apnic.save_csv(out / "apnic_population.csv")


@pytest.mark.parametrize("seed", [3, 11, 19])
def test_streaming_export_byte_identical(seed, tmp_path):
    config = UniverseConfig(seed=seed, n_organizations=100)
    reference = tmp_path / "ref"
    streamed = tmp_path / "streamed"
    _collect_all_export(generate_universe(config), reference)
    summary = export_universe_streaming(config, streamed)
    assert summary["asns"] > 0
    for name in DATASET_FILES:
        assert (streamed / name).read_bytes() == (
            reference / name
        ).read_bytes(), name


def test_streaming_export_chunk_size_invariant(tmp_path):
    default = tmp_path / "default"
    tiny = tmp_path / "tiny"
    export_universe_streaming(SMALL, default)
    plan = build_plan(SMALL, chunk_size=13)
    assert plan.n_chunks > 3
    export_universe_streaming(SMALL, tiny, plan=plan)
    for name in DATASET_FILES:
        assert (tiny / name).read_bytes() == (default / name).read_bytes()


def test_streaming_export_roundtrips(tmp_path):
    from repro.peeringdb import load_snapshot
    from repro.whois import load_as2org_file

    export_universe_streaming(SMALL, tmp_path)
    generated = generate_universe(SMALL)
    whois = load_as2org_file(tmp_path / "as2org.jsonl")
    pdb = load_snapshot(tmp_path / "peeringdb_snapshot.json")
    assert whois.content_digest() == generated.whois.content_digest()
    assert pdb.content_digest() == generated.pdb.content_digest()


# -- CLI --------------------------------------------------------------------


def test_cli_run_sharded(capsys):
    from repro.cli import main

    assert main(
        ["--seed", "5", "--orgs", "100", "run", "--shards", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "shards: 2 (requested 2)" in out
    assert "peak rss:" in out


def test_cli_generate_stream_matches_plain(tmp_path, capsys):
    from repro.cli import main

    plain = tmp_path / "plain"
    streamed = tmp_path / "streamed"
    assert main(
        ["--seed", "5", "--orgs", "100", "generate", "--out", str(plain)]
    ) == 0
    assert main(
        [
            "--seed", "5", "--orgs", "100",
            "generate", "--stream", "--out", str(streamed),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "[streamed]" in out
    for name in DATASET_FILES:
        assert (streamed / name).read_bytes() == (plain / name).read_bytes()
