"""Logging helpers.

The library never configures the root logger; applications (CLI, benches)
call :func:`setup_logging` once.  Library modules obtain loggers through
:func:`get_logger`, which namespaces everything under ``repro``.
"""

from __future__ import annotations

import logging
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

_ROOT_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``.

    ``get_logger("core.pipeline")`` → logger ``repro.core.pipeline``.
    Passing a name already starting with ``repro`` keeps it unchanged.
    """
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def setup_logging(level: int = logging.INFO, stream=None) -> None:
    """Configure a simple handler for the ``repro`` logger tree."""
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    if logger.handlers:
        return
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    logger.addHandler(handler)
    logger.propagate = False


@dataclass
class TimedBlock:
    """Mutable holder :func:`timed` yields; ``elapsed`` is filled on exit.

    Callers that need the measured duration (to feed a metric, a span, a
    report row) read ``block.elapsed`` after the ``with`` block instead of
    re-timing the work themselves.
    """

    label: str
    elapsed: float = 0.0


@contextmanager
def timed(logger: logging.Logger, label: str, level: int = logging.INFO) -> Iterator[TimedBlock]:
    """Log the wall-clock duration of a block and expose it to the caller::

        with timed(log, "scrape") as block:
            ...
        registry.gauge("scrape_seconds").set(block.elapsed)
    """
    block = TimedBlock(label=label)
    start = time.perf_counter()
    try:
        yield block
    finally:
        block.elapsed = time.perf_counter() - start
        logger.log(level, "%s took %.3fs", label, block.elapsed)


class ProgressCounter:
    """Periodic progress logging for long loops without external deps."""

    def __init__(
        self,
        logger: logging.Logger,
        label: str,
        total: Optional[int] = None,
        every: int = 1000,
    ) -> None:
        self._logger = logger
        self._label = label
        self._total = total
        self._every = max(1, every)
        self._count = 0
        self._started = time.perf_counter()

    @property
    def count(self) -> int:
        return self._count

    @property
    def rate(self) -> float:
        """Items processed per second since construction."""
        elapsed = time.perf_counter() - self._started
        return self._count / elapsed if elapsed > 0 else 0.0

    def tick(self, n: int = 1) -> None:
        self._count += n
        if self._count % self._every == 0:
            self._emit_progress()

    def done(self) -> None:
        """Log the final tally — skipped if :meth:`tick` just logged it
        (count landing exactly on an ``every`` boundary)."""
        if self._count % self._every == 0:
            return
        self._emit_progress(final=True)

    def _emit_progress(self, final: bool = False) -> None:
        suffix = " (done)" if final else ""
        if self._total:
            self._logger.info(
                "%s: %d/%d (%.1f%%, %.0f/s)%s",
                self._label,
                self._count,
                self._total,
                100.0 * self._count / self._total,
                self.rate,
                suffix,
            )
        else:
            self._logger.info(
                "%s: %d (%.0f/s)%s", self._label, self._count, self.rate, suffix
            )
