"""Reader/writer for CAIDA's AS2Org JSON-lines file format.

CAIDA publishes AS2Org as a text file of JSON records, one per line, of
two types distinguished by a ``type`` field::

    {"type": "Organization", "organizationId": "...", "name": "...", ...}
    {"type": "ASN", "asn": "3356", "organizationId": "...", ...}

We reproduce that layout (including string-typed ASNs) so the pipeline
reads the same wire format the real system would.

Files written here additionally start with an integrity header — a
``#`` comment line (ignored by any CAIDA-compatible reader, including
:func:`load_as2org_file`) carrying a content digest over the record
lines plus record counts::

    # borges-release {"schema": 1, "digest": "...", "orgs": 10, "asns": 42}

The serve tier verifies that digest before hot-swapping a release file
in (:mod:`repro.serve.store`); files from other producers simply have
no header and skip verification.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..digest import stable_digest
from ..errors import SchemaError, SnapshotError
from .dataset import WhoisDataset
from .models import ASNDelegation, WhoisOrg

#: Marks the integrity header comment line of a borges-written release.
RELEASE_HEADER_PREFIX = "# borges-release "

#: Bump when the header payload changes incompatibly.
RELEASE_HEADER_SCHEMA = 1


def release_digest(record_lines: Sequence[str]) -> str:
    """Content digest over a release's record lines (order-sensitive)."""
    return stable_digest(list(record_lines))


def _read_text(path: Path) -> str:
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                return fh.read()
        return path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SnapshotError(f"cannot read as2org file {path}: {exc}") from exc


def parse_release_header(text: str) -> Optional[Dict[str, object]]:
    """The integrity header of *text*, or ``None`` when there isn't one.

    A malformed header (truncated JSON, wrong schema) raises
    :class:`SnapshotError` — a file claiming to carry a digest but
    failing to parse one is corruption, not absence.
    """
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if not stripped.startswith("#"):
            return None
        if stripped.startswith(RELEASE_HEADER_PREFIX):
            raw = stripped[len(RELEASE_HEADER_PREFIX):]
            try:
                header = json.loads(raw)
            except ValueError as exc:
                raise SnapshotError(
                    f"malformed borges-release header: {exc}"
                ) from exc
            if not isinstance(header, dict) or "digest" not in header:
                raise SnapshotError(
                    "malformed borges-release header: missing digest"
                )
            return header
    return None


def record_lines(text: str) -> List[str]:
    """The non-comment, non-blank lines digests are computed over."""
    return [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]


def save_as2org_file(dataset: WhoisDataset, path: Union[str, Path]) -> None:
    """Write *dataset* in CAIDA's JSON-lines format (gzip if ``.gz``).

    The file starts with the integrity header described in the module
    docstring; every record line is digested so the serve tier can
    detect truncation or tampering before swapping the file in.
    """
    path = Path(path)
    lines: List[str] = []
    for org_id in sorted(dataset.orgs):
        lines.append(json.dumps(dataset.orgs[org_id].to_json(), ensure_ascii=False))
    for asn in sorted(dataset.delegations):
        lines.append(
            json.dumps(dataset.delegations[asn].to_json(), ensure_ascii=False)
        )
    header = RELEASE_HEADER_PREFIX + json.dumps(
        {
            "schema": RELEASE_HEADER_SCHEMA,
            "digest": release_digest(lines),
            "orgs": len(dataset.orgs),
            "asns": len(dataset.delegations),
        },
        sort_keys=True,
    )
    payload = header + "\n" + "\n".join(lines) + "\n"
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(payload)
    else:
        path.write_text(payload, encoding="utf-8")


def load_as2org_text(text: str, origin: str = "<string>") -> WhoisDataset:
    """Parse as2org JSON-lines *text* into a :class:`WhoisDataset`."""
    orgs: List[WhoisOrg] = []
    delegations: List[ASNDelegation] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"{origin}:{lineno}: bad JSON: {exc}") from exc
        kind = record.get("type")
        if kind == "Organization":
            orgs.append(WhoisOrg.from_json(record))
        elif kind == "ASN":
            delegations.append(ASNDelegation.from_json(record))
        else:
            raise SchemaError(f"{origin}:{lineno}: unknown record type {kind!r}")
    return WhoisDataset.build(orgs, delegations)


def load_as2org_file(path: Union[str, Path]) -> WhoisDataset:
    """Load a CAIDA-format AS2Org file into a :class:`WhoisDataset`."""
    path = Path(path)
    return load_as2org_text(_read_text(path), origin=str(path))


def read_as2org_file_text(path: Union[str, Path]) -> str:
    """Raw text of an as2org file (gz-transparent), for verification."""
    return _read_text(Path(path))
