"""Deeper tests of generator internals: categories, carriers, exports."""

import dataclasses

import pytest

from repro.config import TEST_UNIVERSE, UniverseConfig
from repro.universe import generate_universe
from repro.universe.entities import OrgCategory
from repro.universe.generator import _is_carrier
from repro.web.simweb import is_framework_favicon_brand


class TestCategoryMix:
    def test_all_categories_present(self, universe):
        counts = {
            category: len(universe.ground_truth.by_category(category))
            for category in OrgCategory
        }
        assert all(count > 0 for count in counts.values())

    def test_access_is_the_plurality(self, universe):
        gt = universe.ground_truth
        access = len(gt.by_category(OrgCategory.ACCESS))
        for category in (OrgCategory.TRANSIT, OrgCategory.CONTENT):
            assert access > len(gt.by_category(category))

    def test_transit_overrepresented_among_conglomerates(self, universe):
        gt = universe.ground_truth
        random_orgs = [
            o for o in gt.all_orgs() if o.org_id.startswith("org-")
        ]
        def conglomerate_rate(category):
            members = [o for o in random_orgs if o.category is category]
            if not members:
                return 0.0
            return sum(o.is_conglomerate for o in members) / len(members)

        assert conglomerate_rate(OrgCategory.TRANSIT) > conglomerate_rate(
            OrgCategory.ENTERPRISE
        )


class TestCarriers:
    def test_carrier_predicate(self, universe):
        carriers = [
            o for o in universe.ground_truth.all_orgs() if _is_carrier(o)
        ]
        for org in carriers:
            assert org.category is OrgCategory.TRANSIT
            assert len(org.brands) >= 5

    def test_tier1_dominated_by_carrier_asns(self, universe):
        tier1 = universe.topology.tier1s()
        assert tier1
        carrier_asns = set()
        for org in universe.ground_truth.all_orgs():
            if _is_carrier(org):
                carrier_asns.update(org.asns)
        if carrier_asns:  # small test universes may draw few carriers
            hits = sum(1 for asn in tier1 if asn in carrier_asns)
            assert hits >= 1  # carriers always reach the tier-1 clique


class TestPdbExport:
    def test_registration_rate_in_band(self, universe):
        rate = len(universe.pdb) / len(universe.whois)
        # Config: 0.30 base with category boosts → 0.3-0.55 overall.
        assert 0.2 < rate < 0.6

    def test_transit_registers_more_often(self, universe):
        gt = universe.ground_truth

        def rate(category):
            asns = [
                asn for org in gt.by_category(category) for asn in org.asns
            ]
            if not asns:
                return 0.0
            return sum(1 for a in asns if a in universe.pdb) / len(asns)

        assert rate(OrgCategory.TRANSIT) > rate(OrgCategory.ENTERPRISE)

    def test_info_type_matches_category(self, universe):
        for net in universe.pdb.networks():
            org = universe.ground_truth.org_of_asn(net.asn)
            expected = {
                OrgCategory.ACCESS: "Cable/DSL/ISP",
                OrgCategory.TRANSIT: "NSP",
                OrgCategory.CONTENT: "Content",
                OrgCategory.ENTERPRISE: "Enterprise",
            }[org.category]
            assert net.info_type == expected

    def test_website_fields_parse_or_are_empty(self, universe):
        from repro.web.url import parse_url

        for net in universe.pdb.networks():
            if net.website:
                parse_url(net.website)  # must not raise

    def test_framework_favicons_only_on_small_orgs(self, universe):
        for brand in universe.ground_truth.all_brands():
            if is_framework_favicon_brand(brand.favicon_brand or ""):
                org = universe.ground_truth.orgs[brand.org_id]
                assert not org.is_conglomerate


class TestPopulations:
    def test_total_scaled_to_config(self, universe):
        total = universe.apnic.total_users
        target = universe.config.total_users
        assert abs(total - target) / target < 0.01

    def test_country_matches_brand(self, universe):
        for record in universe.apnic.records():
            brand = universe.ground_truth.brand_of_asn(record.asn)
            assert record.country == brand.country

    def test_heavy_tail(self, universe):
        values = sorted(
            (universe.apnic.users_of(a) for a in universe.apnic.asns()),
            reverse=True,
        )
        top_decile = values[: max(1, len(values) // 10)]
        assert sum(top_decile) > 0.5 * sum(values)


class TestScaling:
    def test_scaled_universe_generates(self):
        config = TEST_UNIVERSE.scaled(0.5)
        universe = generate_universe(config)
        assert len(universe.whois) > 0
        assert len(universe.pdb) > 0

    def test_minimum_viable_universe(self):
        config = dataclasses.replace(
            TEST_UNIVERSE, n_organizations=10, total_users=1000
        )
        universe = generate_universe(config)
        # Canonical scenarios survive even in a tiny world.
        from repro.universe.canonical import AS_LUMEN

        assert AS_LUMEN in universe.whois

    def test_zero_rate_universe(self):
        config = dataclasses.replace(
            TEST_UNIVERSE,
            n_organizations=50,
            notes_rate=0.0,
            website_rate=0.0,
            platform_website_rate=0.0,
        )
        universe = generate_universe(config)
        for net in universe.pdb.networks():
            if not net.name.startswith(("Lumen", "CenturyLink")):
                # canonical records keep their planted fields
                pass
        assert len(universe.whois) > 0

    def test_max_rate_universe_generates(self):
        config = dataclasses.replace(
            TEST_UNIVERSE,
            n_organizations=50,
            conglomerate_fraction=0.5,
            shared_favicon_rate=1.0,
            merger_redirect_rate=1.0,
            pdb_consolidation_rate=1.0,
        )
        universe = generate_universe(config)
        assert len(universe.pdb) > 0
