#!/usr/bin/env python3
"""CI gate for the multi-worker serve tier.

Compiles a snapshot blob, then runs the same pipelined load against a
1-worker pool and a 4-worker pool sharing that blob behind one
``SO_REUSEPORT`` socket, with two hot swaps landing mid-run in each
configuration.  The gate asserts, in order of importance:

1. **Correctness** — every blob answer (ASN lookup, org page, sibling
   verdict, search ranking) is byte-identical to the in-memory
   :class:`MappingIndex` over a seeded sample of the corpus, and every
   request in both load runs succeeded (zero non-2xx across the swap
   windows).
2. **Hygiene** — worker churn (one ``SIGKILL`` during the 4-worker run)
   respawns onto the *current* generation and no shared-memory segment
   leaks after ``stop()``.
3. **Scaling** — on machines with ≥ 4 cores, the 4-worker aggregate
   must be ≥ 2.5× the single-worker aggregate.  On smaller runners the
   ratio is reported but not enforced (there is nothing to scale onto).

Run:  PYTHONPATH=src python scripts/serve_scale_check.py
"""

from __future__ import annotations

import json
import os
import random
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import UniverseConfig  # noqa: E402
from repro.core import BorgesPipeline  # noqa: E402
from repro.serve import MappingIndex  # noqa: E402
from repro.serve.loadgen import run_pipelined  # noqa: E402
from repro.serve.shm import (  # noqa: E402
    BlobIndex,
    WorkerConfig,
    WorkerPool,
    compile_index,
)
from repro.universe import generate_universe  # noqa: E402

MIN_SCALING_4X = 2.5
DRIVE_SECONDS = 3.0
SAMPLE_ASNS = 2000
SAMPLE_QUERIES = 60


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)
    print(f"  ok: {message}")


def check_equivalence(index: MappingIndex, reader: BlobIndex) -> None:
    """Blob answers must be byte-identical to the index's."""
    rng = random.Random(41)
    asns = index.asns()
    sample = rng.sample(asns, min(SAMPLE_ASNS, len(asns)))
    for asn in sample:
        expected = json.dumps(index.lookup_asn(asn).to_json())
        actual = json.dumps(reader.lookup_asn(asn).to_json())
        if actual != expected:
            fail(f"asn {asn}: blob answer diverged from index")
        org_id = index.org_of(asn).org_id
        if json.dumps(reader.org(org_id).to_json()) != json.dumps(
            index.org(org_id).to_json()
        ):
            fail(f"org {org_id}: blob answer diverged from index")
    for _ in range(SAMPLE_QUERIES):
        a, b = rng.choice(asns), rng.choice(asns)
        if reader.are_siblings(a, b) != index.are_siblings(a, b):
            fail(f"sibling verdict diverged for ({a}, {b})")
    queries = {index.lookup_asn(a).org.name.split()[0] for a in sample[:40]}
    queries |= {q[:3] for q in list(queries)[:20]}  # prefix paths
    for query in sorted(queries):
        expected = json.dumps([r.to_json() for r in index.search(query)])
        actual = json.dumps([r.to_json() for r in reader.search(query)])
        if actual != expected:
            fail(f"search({query!r}) diverged")
    print(
        f"  ok: blob byte-identical to index over {len(sample)} ASNs, "
        f"{SAMPLE_QUERIES} sibling pairs, {len(queries)} search queries"
    )


def shm_entries() -> set:
    root = Path("/dev/shm")
    return {p.name for p in root.iterdir()} if root.is_dir() else set()


def drive(pool: WorkerPool, blob: bytes, paths, seconds: float) -> dict:
    """Pipelined load with two mid-run hot swaps."""
    totals = {"requests": 0, "ok": 0, "errors": 0}
    swaps: list = []

    def swapper() -> None:
        for _ in range(2):
            time.sleep(seconds / 3.0)
            swaps.append(pool.publish(blob))

    thread = threading.Thread(target=swapper)
    started = time.perf_counter()
    thread.start()
    try:
        while time.perf_counter() - started < seconds:
            result = run_pipelined(pool.url, paths, repeat=1)
            for key in totals:
                totals[key] += result[key]
    finally:
        thread.join(timeout=60.0)
    elapsed = time.perf_counter() - started
    totals["qps"] = totals["requests"] / elapsed
    totals["swaps"] = len(swaps)
    return totals


def churn(pool: WorkerPool, blob: bytes, paths) -> None:
    """SIGKILL one worker, publish while it is down, verify recovery.

    The respawned worker must come back on the published generation
    (pointer-driven catch-up) and fresh traffic must see zero failures.
    """
    dead_pid = pool.kill_worker(pool.config.workers - 1)
    generation = pool.publish(blob)
    states = pool.worker_states()
    check(
        states[-1] is not None and states[-1]["pid"] != dead_pid,
        f"killed worker (pid {dead_pid}) was respawned",
    )
    check(
        all(s and s["generation"] == generation for s in states),
        f"all workers converged on generation {generation} after churn",
    )
    after = run_pipelined(pool.url, paths, repeat=2)
    check(
        after["errors"] == 0 and after["ok"] == after["requests"],
        f"zero failed requests after kill -9 ({after['requests']:,} sent)",
    )


def main() -> None:
    print("== serve-scale: building universe + snapshot blob ==")
    universe = generate_universe(UniverseConfig())
    result = BorgesPipeline(universe.whois, universe.pdb, universe.web).run()
    index = MappingIndex.build(
        result.mapping, whois=universe.whois, pdb=universe.pdb
    )
    blob = compile_index(index)
    print(
        f"  blob: {len(blob):,} bytes for {index.asn_count:,} ASNs / "
        f"{len(index):,} orgs"
    )

    print("== answer equivalence: blob reader vs MappingIndex ==")
    check_equivalence(index, BlobIndex(blob))

    paths = [f"/v1/asn/{asn}" for asn in index.asns()[:512]]
    before = shm_entries()
    results = {}
    for workers in (1, 4):
        print(f"== load: {workers} worker(s), 2 hot swaps mid-run ==")
        pool = WorkerPool(
            WorkerConfig(workers=workers, swap_timeout=60.0),
            state_dir=None,
        )
        pool.start(blob)
        try:
            run_pipelined(pool.url, paths[:64], repeat=1)  # warm-up
            totals = drive(pool, blob, paths, DRIVE_SECONDS)
            check(
                totals["swaps"] == 2, f"workers={workers}: 2 hot swaps landed"
            )
            check(
                totals["errors"] == 0 and totals["ok"] == totals["requests"],
                f"workers={workers}: zero failed requests "
                f"({totals['requests']:,} total across swap windows)",
            )
            if workers == 4:
                print("== worker churn: kill -9 + publish while down ==")
                churn(pool, blob, paths)
        finally:
            pool.stop()
        results[workers] = totals
        print(f"  aggregate: {totals['qps']:,.0f} req/s")

    leaked = shm_entries() - before
    check(not leaked, f"no leaked shm segments (leaked={sorted(leaked)})")

    ratio = results[4]["qps"] / max(results[1]["qps"], 1e-9)
    cores = os.cpu_count() or 1
    print(f"== scaling: {ratio:.2f}x on {cores} core(s) ==")
    if cores >= 4:
        check(
            ratio >= MIN_SCALING_4X,
            f"4-worker aggregate >= {MIN_SCALING_4X}x single worker "
            f"(got {ratio:.2f}x)",
        )
    else:
        print(
            f"  skip: scaling bar needs >= 4 cores, runner has {cores} "
            f"(measured {ratio:.2f}x)"
        )
    print("serve-scale check passed")


if __name__ == "__main__":
    main()
