"""Crash-safety tests for the watch daemon's digest-chained run journal.

The journal is the daemon's only memory across ``kill -9``: these tests
pin the chain invariants (tamper-evidence mid-file, tolerance for a
partial final line), the self-heal on replay, and every piece of derived
state the daemon's :meth:`recover` consumes — published digests, orphan
crash counts, and the quarantine set.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import JournalIntegrityError
from repro.watch import QUARANTINE_CRASHES, RunJournal
from repro.watch.journal import GENESIS


@pytest.fixture()
def journal(tmp_path):
    return RunJournal(tmp_path / "journal.jsonl")


class TestChain:
    def test_entries_are_digest_chained(self, journal):
        first = journal.append("start", dataset_digest="d1", cycle=1)
        second = journal.append(
            "publish", dataset_digest="d1", archive_generation=1
        )
        assert first["prev"] == GENESIS
        assert second["prev"] == first["digest"]
        assert [e["seq"] for e in journal.entries()] == [0, 1]

    def test_replay_reproduces_entries_and_extends_the_chain(self, journal):
        journal.append("start", dataset_digest="d1", cycle=1)
        journal.append("publish", dataset_digest="d1", archive_generation=1)
        journal.append("swap", dataset_digest="d1", archive_generation=1)
        replayed = RunJournal(journal.path)
        assert replayed.entries() == journal.entries()
        assert replayed.dropped_tail == 0
        appended = replayed.append("start", dataset_digest="d2", cycle=2)
        assert appended["prev"] == journal.entries()[-1]["digest"]
        assert len(RunJournal(journal.path)) == 4

    def test_missing_file_starts_an_empty_journal(self, tmp_path):
        journal = RunJournal(tmp_path / "nested" / "dir" / "journal.jsonl")
        assert len(journal) == 0
        assert journal.published_digests() == set()
        assert journal.last_published() is None
        assert journal.last_swapped_generation() == 0


class TestCrashArtifacts:
    def test_partial_final_line_is_dropped_not_fatal(self, journal):
        journal.append("start", dataset_digest="d1", cycle=1)
        journal.append("fail", dataset_digest="d1", error="boom")
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 2, "ts"')  # kill -9 mid-append
        replayed = RunJournal(journal.path)
        assert replayed.dropped_tail == 1
        assert len(replayed) == 2

    def test_dropped_tail_is_truncated_so_appends_stay_clean(self, journal):
        journal.append("start", dataset_digest="d1", cycle=1)
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"partial')  # no trailing newline, like a real crash
        replayed = RunJournal(journal.path)
        assert replayed.dropped_tail == 1
        replayed.append("fail", dataset_digest="d1", error="boom")
        # The partial line must not have swallowed the new entry: a
        # third replay sees both good entries and a clean chain.
        final = RunJournal(journal.path)
        assert final.dropped_tail == 0
        assert [e["kind"] for e in final.entries()] == ["start", "fail"]

    def test_final_line_with_broken_chain_is_dropped(self, journal):
        journal.append("start", dataset_digest="d1", cycle=1)
        forged = {
            "seq": 1,
            "ts": 0.0,
            "kind": "publish",
            "prev": "not-the-real-digest",
            "fields": {"dataset_digest": "d1"},
            "digest": "forged",
        }
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(forged) + "\n")
        replayed = RunJournal(journal.path)
        assert replayed.dropped_tail == 1
        assert [e["kind"] for e in replayed.entries()] == ["start"]

    def test_mid_file_garbage_raises_integrity_error(self, journal):
        for n in range(3):
            journal.append("start", dataset_digest=f"d{n}", cycle=n)
        lines = journal.path.read_text(encoding="utf-8").splitlines()
        lines[1] = "not json at all"
        journal.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JournalIntegrityError):
            RunJournal(journal.path)

    def test_mid_file_tampered_fields_break_the_chain(self, journal):
        journal.append("publish", dataset_digest="d1", archive_generation=1)
        journal.append("swap", dataset_digest="d1", archive_generation=1)
        journal.append("start", dataset_digest="d2", cycle=2)
        lines = journal.path.read_text(encoding="utf-8").splitlines()
        entry = json.loads(lines[0])
        entry["fields"]["dataset_digest"] = "dX"  # rewrite history
        lines[0] = json.dumps(entry, sort_keys=True)
        journal.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JournalIntegrityError):
            RunJournal(journal.path)


class TestDerivedState:
    def test_published_digests_and_last_published(self, journal):
        journal.append("publish", dataset_digest="d1", archive_generation=1)
        journal.append("publish", dataset_digest="d2", archive_generation=2)
        assert journal.published_digests() == {"d1", "d2"}
        last = journal.last_published()
        assert last["dataset_digest"] == "d2"
        assert last["archive_generation"] == 2

    def test_last_swapped_generation_tracks_the_newest_swap(self, journal):
        assert journal.last_swapped_generation() == 0
        journal.append("swap", dataset_digest="d1", archive_generation=3)
        journal.append("swap", dataset_digest="d2", archive_generation=7)
        assert journal.last_swapped_generation() == 7

    def test_orphan_starts_are_counted_per_digest(self, journal):
        journal.append("start", dataset_digest="d1", cycle=1)
        journal.append("fail", dataset_digest="d1", error="clean failure")
        journal.append("start", dataset_digest="d2", cycle=2)  # orphan
        journal.append("start", dataset_digest="d2", cycle=3)  # orphan again
        counts = journal.orphan_crash_counts()
        assert "d1" not in counts  # terminated cleanly
        assert counts["d2"] == QUARANTINE_CRASHES
        assert journal.quarantined_digests() == {"d2"}

    def test_explicit_quarantine_entries_count(self, journal):
        journal.append("quarantine", dataset_digest="d9", crashes=2)
        assert journal.quarantined_digests() == {"d9"}

    def test_stats_rolls_up_kinds_and_quarantine(self, journal):
        journal.append("start", dataset_digest="d1", cycle=1)
        journal.append("publish", dataset_digest="d1", archive_generation=1)
        journal.append("swap", dataset_digest="d1", archive_generation=1)
        journal.append("quarantine", dataset_digest="bad", crashes=2)
        stats = journal.stats()
        assert stats["entries"] == 4
        assert stats["by_kind"] == {
            "start": 1, "publish": 1, "swap": 1, "quarantine": 1,
        }
        assert stats["dropped_tail"] == 0
        assert stats["published_digests"] == 1
        assert stats["quarantined_digests"] == ["bad"]
