"""Exception hierarchy for the Borges reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Sub-hierarchies
mirror the package layout (data loading, LLM, web, pipeline).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class DataError(ReproError):
    """A dataset is malformed, inconsistent, or missing required fields."""


class SchemaError(DataError):
    """A record does not conform to the expected data schema."""


class SnapshotError(DataError):
    """A snapshot file could not be loaded or serialized."""


class UnknownASNError(DataError):
    """An ASN was referenced that is not present in the dataset."""

    def __init__(self, asn: int) -> None:
        super().__init__(f"unknown ASN: {asn}")
        self.asn = asn


class LLMError(ReproError):
    """Base class for LLM client/back-end failures."""


class PromptError(LLMError):
    """A prompt template could not be rendered."""


class LLMResponseError(LLMError):
    """The model returned output that could not be parsed."""

    def __init__(self, message: str, raw_output: str = "") -> None:
        super().__init__(message)
        self.raw_output = raw_output


class LLMBackendError(LLMError):
    """The backing model/service failed (simulated rate limits, etc.)."""


class WebError(ReproError):
    """Base class for simulated-web failures."""


class URLError(WebError):
    """A URL could not be parsed or normalized."""

    def __init__(self, url: str, reason: str) -> None:
        super().__init__(f"bad URL {url!r}: {reason}")
        self.url = url
        self.reason = reason


class FetchError(WebError):
    """A simulated HTTP fetch failed (host down, too many redirects...)."""

    def __init__(self, url: str, reason: str) -> None:
        super().__init__(f"fetch failed for {url!r}: {reason}")
        self.url = url
        self.reason = reason


class RedirectLoopError(FetchError):
    """A redirect chain exceeded the maximum number of hops."""

    def __init__(self, url: str, max_hops: int) -> None:
        super().__init__(url, f"redirect chain exceeded {max_hops} hops")
        self.max_hops = max_hops


class PipelineError(ReproError):
    """A Borges pipeline stage failed."""


class ExperimentError(ReproError):
    """An experiment harness failure (unknown experiment id, etc.)."""
