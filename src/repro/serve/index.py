"""The immutable read-side index compiled from an :class:`OrgMapping`.

A :class:`MappingIndex` is the serve-layer counterpart of the write-side
pipeline output: every cluster becomes one :class:`OrgRecord` with a
stable ``BORGES-{lowest ASN}`` handle (the same handle scheme
:mod:`repro.core.release` publishes), every ASN resolves to its record in
O(1), and a tokenized inverted index over organization names answers
free-text search.  Indexes are immutable once built — the
:class:`~repro.serve.store.SnapshotStore` swaps whole generations rather
than mutating one in place, which is what lets readers run lock-free.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..digest import stable_digest
from ..errors import UnknownASNError, UnknownOrgError
from ..types import ASN
from ..core.mapping import OrgMapping

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Tokens too common to discriminate between organizations; keeping them
#: out of the inverted index keeps search postings short.
_STOPWORDS = frozenset(
    {"inc", "llc", "ltd", "corp", "co", "sa", "ag", "gmbh", "the", "of"}
)


def tokenize(text: str) -> List[str]:
    """Lowercase alphanumeric tokens of *text* (stopwords dropped)."""
    return [
        token
        for token in _TOKEN_RE.findall(text.lower())
        if token not in _STOPWORDS
    ]


def org_handle(cluster_min_asn: int) -> str:
    """The stable release handle of a cluster (see core/release.py)."""
    return f"BORGES-{cluster_min_asn}"


@dataclass(frozen=True)
class OrgRecord:
    """One organization as the read path serves it."""

    org_id: str
    name: str
    country: str
    members: Tuple[ASN, ...]

    @property
    def size(self) -> int:
        return len(self.members)

    def to_json(self) -> Dict[str, object]:
        return {
            "org_id": self.org_id,
            "name": self.name,
            "country": self.country,
            "size": self.size,
            "members": list(self.members),
        }


@dataclass(frozen=True)
class AsnRecord:
    """Per-ASN detail: registry name/website plus the owning org."""

    asn: ASN
    name: str
    website: str
    org: OrgRecord

    def to_json(self) -> Dict[str, object]:
        return {
            "asn": self.asn,
            "name": self.name,
            "website": self.website,
            "org": self.org.to_json(),
        }


@dataclass(frozen=True)
class MappingIndex:
    """O(1) ASN→org / org→members lookups plus org-name search.

    Build with :meth:`build`; the constructor fields are the compiled
    read-only structures.
    """

    method: str
    digest: str
    _asns: Dict[ASN, AsnRecord] = field(repr=False)
    _orgs: Dict[str, OrgRecord] = field(repr=False)
    _postings: Dict[str, Tuple[str, ...]] = field(repr=False)

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        mapping: OrgMapping,
        whois=None,
        pdb=None,
    ) -> "MappingIndex":
        """Compile *mapping* (plus optional WHOIS/PeeringDB metadata).

        *whois* (a :class:`~repro.whois.WhoisDataset`) supplies per-ASN
        registry names and org countries; *pdb* (a
        :class:`~repro.peeringdb.PDBSnapshot`) supplies operator
        websites.  Both are optional so a bare mapping JSON is servable.
        """
        orgs: Dict[str, OrgRecord] = {}
        asns: Dict[ASN, AsnRecord] = {}
        postings: Dict[str, List[str]] = {}
        for cluster in mapping.clusters():
            members = tuple(sorted(cluster))
            representative = members[0]
            handle = org_handle(representative)
            country = ""
            if whois is not None and representative in whois:
                country = whois.org_of(representative).country
            record = OrgRecord(
                org_id=handle,
                name=mapping.org_name_of(representative),
                country=country,
                members=members,
            )
            orgs[handle] = record
            for token in set(tokenize(record.name)):
                postings.setdefault(token, []).append(handle)
            for asn in members:
                name = ""
                website = ""
                if whois is not None and asn in whois:
                    name = whois.delegations[asn].name
                if pdb is not None and asn in pdb:
                    net = pdb.nets[asn]
                    website = net.website
                    name = name or net.name
                asns[asn] = AsnRecord(
                    asn=asn, name=name, website=website, org=record
                )
        digest = stable_digest(
            {
                "method": mapping.method,
                "clusters": [list(o.members) for o in orgs.values()],
            }
        )
        return cls(
            method=mapping.method,
            digest=digest,
            _asns=asns,
            _orgs=orgs,
            _postings={
                token: tuple(sorted(handles))
                for token, handles in postings.items()
            },
        )

    # -- lookups -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._orgs)

    def __contains__(self, asn: int) -> bool:
        return asn in self._asns

    @property
    def asn_count(self) -> int:
        return len(self._asns)

    def asns(self) -> List[ASN]:
        return sorted(self._asns)

    def lookup_asn(self, asn: ASN) -> AsnRecord:
        try:
            return self._asns[asn]
        except KeyError:
            raise UnknownASNError(asn) from None

    def org(self, org_id: str) -> OrgRecord:
        try:
            return self._orgs[org_id]
        except KeyError:
            raise UnknownOrgError(org_id) from None

    def org_of(self, asn: ASN) -> OrgRecord:
        return self.lookup_asn(asn).org

    def are_siblings(self, a: ASN, b: ASN) -> bool:
        left = self._asns.get(a)
        right = self._asns.get(b)
        return left is not None and right is not None and left.org is right.org

    # -- search ------------------------------------------------------------

    def search(self, query: str, limit: int = 10) -> List[OrgRecord]:
        """Organizations whose name matches *query* tokens, best first.

        Ranking: number of matched query tokens (an org matching every
        token outranks partial matches), then member count, then handle.
        The final query token also matches as a prefix, so incremental
        queries ("teli", "telia") behave like an autocomplete box.
        """
        tokens = tokenize(query)
        if not tokens or limit <= 0:
            return []
        scores: Dict[str, int] = {}
        for position, token in enumerate(tokens):
            matched = set(self._postings.get(token, ()))
            if position == len(tokens) - 1 and len(token) >= 2:
                for candidate, handles in self._postings.items():
                    if candidate.startswith(token):
                        matched.update(handles)
            for handle in matched:
                scores[handle] = scores.get(handle, 0) + 1
        ranked = sorted(
            scores.items(),
            key=lambda item: (
                -item[1],
                -self._orgs[item[0]].size,
                item[0],
            ),
        )
        return [self._orgs[handle] for handle, _ in ranked[:limit]]

    # -- accounting --------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "digest": self.digest,
            "orgs": len(self._orgs),
            "asns": len(self._asns),
            "search_tokens": len(self._postings),
        }
