"""Event log, SLO burn-rate math, exemplars, runtime sampler, quantiles."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.obs.context import new_trace_context, use_trace_context
from repro.obs.log import EventLog, get_event_log, set_event_log, use_event_log
from repro.obs.registry import Histogram, MetricsRegistry, percentile
from repro.obs.slo import (
    ExemplarStore,
    RuntimeSampler,
    SLOConfig,
    SLOTracker,
    _process_rss_bytes,
)


class TestEventLog:
    def test_emit_and_read_back(self):
        log = EventLog(capacity=8)
        event = log.emit("unit.test", answer=42)
        assert event is not None
        assert event["event"] == "unit.test"
        assert event["severity"] == "info"
        assert event["answer"] == 42
        assert log.events("unit.test")[0]["answer"] == 42

    def test_ring_is_bounded_oldest_dropped(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit("tick", i=i)
        kept = [event["i"] for event in log.events()]
        assert kept == [7, 8, 9]
        assert log.stats()["buffered"] == 3
        assert log.stats()["emitted"] == 10

    def test_severity_floor_suppresses(self):
        log = EventLog(min_severity="warning")
        assert log.emit("quiet", severity="info") is None
        assert log.emit("loud", severity="error") is not None
        stats = log.stats()
        assert stats["suppressed"] == 1
        assert stats["buffered"] == 1

    def test_unknown_severity_rejected(self):
        log = EventLog()
        with pytest.raises(ConfigError):
            log.emit("bad", severity="fatal")
        with pytest.raises(ConfigError):
            EventLog(min_severity="loud")
        with pytest.raises(ConfigError):
            EventLog(capacity=0)

    def test_sampling_drops_info_keeps_warnings(self):
        log = EventLog(sample_seed=1)
        kept = sum(
            1 for _ in range(1000) if log.emit("hot", sample=0.1) is not None
        )
        assert 50 < kept < 200  # seeded, roughly 10%
        for _ in range(50):
            assert (
                log.emit("bad", severity="warning", sample=0.0) is not None
            ), "warnings must never be sampled away"

    def test_trace_id_stamped_from_context(self):
        log = EventLog()
        ctx = new_trace_context()
        with use_trace_context(ctx):
            event = log.emit("traced")
        assert event["trace_id"] == ctx.trace_id
        assert "trace_id" not in log.emit("untraced")

    def test_file_sink_writes_jsonl(self, tmp_path):
        path = tmp_path / "logs" / "events.jsonl"
        with EventLog(path=path) as log:
            log.emit("one", n=1)
            log.emit("two", severity="warning", n=2)
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["one", "two"]
        assert log.stats()["written"] == 2

    def test_tail_returns_newest(self):
        log = EventLog()
        for i in range(5):
            log.emit("e", i=i)
        assert [event["i"] for event in log.tail(2)] == [3, 4]

    def test_global_injection(self):
        original = get_event_log()
        mine = EventLog()
        with use_event_log(mine):
            assert get_event_log() is mine
            get_event_log().emit("inside")
        assert get_event_log() is original
        assert mine.events("inside")

    def test_set_event_log_returns_previous(self):
        original = get_event_log()
        mine = EventLog()
        assert set_event_log(mine) is original
        assert set_event_log(original) is mine


class TestSLOConfig:
    def test_defaults_validate(self):
        SLOConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"availability_objective": 1.0},
            {"availability_objective": 0.0},
            {"latency_objective": 1.5},
            {"latency_threshold": 0.0},
            {"fast_window_seconds": -1.0},
            {"fast_window_seconds": 600.0, "slow_window_seconds": 300.0},
            {"burn_rate_threshold": 0.0},
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SLOConfig(**kwargs).validate()


def _tracker(**kwargs) -> SLOTracker:
    config = SLOConfig(
        fast_window_seconds=kwargs.pop("fast", 60.0),
        slow_window_seconds=kwargs.pop("slow", 600.0),
        **kwargs,
    )
    return SLOTracker(config, registry=MetricsRegistry())


class TestBurnRateMath:
    def test_empty_window_burns_zero(self):
        tracker = _tracker()
        snap = tracker.snapshot(now=1000.0)
        for slo in ("availability", "latency"):
            for window in ("fast", "slow"):
                assert snap[slo]["windows"][window]["burn_rate"] == 0.0
            assert snap[slo]["alert"]["state"] == "clear"
        assert snap["any_alert_firing"] is False

    def test_burn_rate_formula(self):
        # objective 0.999 → budget 0.001; 1% errors → burn 10.
        tracker = _tracker(availability_objective=0.999)
        now = 1000.0
        for i in range(100):
            tracker.record(ok=(i != 0), latency=0.0, now=now)
        snap = tracker.snapshot(now=now)
        fast = snap["availability"]["windows"]["fast"]
        assert fast["total"] == 100
        assert fast["bad"] == 1
        assert fast["burn_rate"] == pytest.approx(10.0)

    def test_exactly_at_threshold_fires(self):
        # The alert condition is >=, so a burn rate exactly at the
        # threshold fires.  Build the threshold with the same float
        # expression the tracker uses so equality is bit-exact:
        # 18 bad in 1250 on a 0.999 objective.
        bad, total = 18, 1250
        threshold = (bad / total) / (1.0 - 0.999)
        tracker = _tracker(
            availability_objective=0.999, burn_rate_threshold=threshold
        )
        now = 1000.0
        for i in range(total):
            tracker.record(ok=(i >= bad), latency=0.0, now=now)
        snap = tracker.snapshot(now=now)
        fast_burn = snap["availability"]["windows"]["fast"]["burn_rate"]
        assert fast_burn == pytest.approx(threshold)
        assert snap["availability"]["alert"]["state"] == "firing"
        assert snap["any_alert_firing"] is True

    def test_needs_both_windows_to_fire(self):
        # Errors only inside the fast window's recent past, diluted over
        # the slow window by a long healthy history → slow burn low.
        tracker = _tracker(fast=10.0, slow=600.0)
        for i in range(10_000):
            tracker.record(ok=True, latency=0.0, now=100.0 + (i % 400))
        now = 500.0
        for _ in range(20):
            tracker.record(ok=False, latency=0.0, now=now)
        snap = tracker.snapshot(now=now)
        windows = snap["availability"]["windows"]
        assert windows["fast"]["burn_rate"] >= tracker.config.burn_rate_threshold
        assert windows["slow"]["burn_rate"] < tracker.config.burn_rate_threshold
        assert snap["availability"]["alert"]["state"] == "clear"

    def test_alert_fires_then_clears_after_recovery(self):
        tracker = _tracker(fast=10.0, slow=60.0)
        now = 1000.0
        for _ in range(100):
            tracker.record(ok=False, latency=0.0, now=now)
        assert (
            tracker.snapshot(now=now)["availability"]["alert"]["state"]
            == "firing"
        )
        # Healthy traffic after the fast window rolls past the errors.
        recovered = now + 15.0
        for _ in range(100):
            tracker.record(ok=True, latency=0.0, now=recovered)
        snap = tracker.snapshot(now=recovered)
        assert snap["availability"]["alert"]["state"] == "clear"
        assert snap["availability"]["alert"]["transitions"] == 2

    def test_window_boundary_expires_old_buckets(self):
        tracker = _tracker(fast=60.0, slow=600.0)
        tracker.record(ok=False, latency=0.0, now=100.0)
        in_window = tracker.snapshot(now=150.0)
        assert in_window["availability"]["windows"]["fast"]["total"] == 1
        past_window = tracker.snapshot(now=100.0 + 61.0)
        assert past_window["availability"]["windows"]["fast"]["total"] == 0

    def test_latency_objective_counts_slow_requests(self):
        tracker = _tracker(latency_threshold=0.1, latency_objective=0.99)
        now = 1000.0
        for i in range(100):
            tracker.record(ok=True, latency=0.5 if i < 2 else 0.001, now=now)
        snap = tracker.snapshot(now=now)
        latency_fast = snap["latency"]["windows"]["fast"]
        assert latency_fast["bad"] == 2
        assert latency_fast["burn_rate"] == pytest.approx(2.0)
        # availability untouched by slow-but-successful requests
        assert snap["availability"]["windows"]["fast"]["bad"] == 0

    def test_alerts_summary_and_gauges(self):
        registry = MetricsRegistry()
        tracker = SLOTracker(
            SLOConfig(fast_window_seconds=60.0, slow_window_seconds=600.0),
            registry=registry,
        )
        now = 1000.0
        for _ in range(100):
            tracker.record(ok=False, latency=0.0, now=now)
        assert tracker.alerts(now=now)["availability"] == "firing"
        assert (
            registry.value("slo_alert_firing", slo="availability") == 1.0
        )
        assert registry.value("slo_burn_rate", slo="availability", window="fast") > 0


class TestExemplarStore:
    def test_keeps_only_over_threshold(self):
        store = ExemplarStore(threshold=0.1, capacity=4)
        assert not store.offer(endpoint="asn", status=200, latency=0.05)
        assert store.offer(
            endpoint="asn",
            status=200,
            latency=0.2,
            trace_id="abc",
            spans=[{"name": "http.asn"}],
        )
        kept = store.exemplars()
        assert len(kept) == 1
        assert kept[0]["trace_id"] == "abc"
        assert kept[0]["latency_ms"] == pytest.approx(200.0)
        assert kept[0]["spans"] == [{"name": "http.asn"}]

    def test_capacity_bounds_ring(self):
        store = ExemplarStore(threshold=0.0, capacity=3)
        for i in range(10):
            store.offer(endpoint="asn", status=200, latency=0.01, trace_id=str(i))
        kept = [entry["trace_id"] for entry in store.exemplars()]
        assert kept == ["7", "8", "9"]
        stats = store.stats()
        assert stats["retained"] == 3
        assert stats["offered"] == 10

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            ExemplarStore(threshold=-1.0)
        with pytest.raises(ConfigError):
            ExemplarStore(capacity=0)


class TestRuntimeSampler:
    def test_sample_once_sets_gauges(self):
        registry = MetricsRegistry()
        sampler = RuntimeSampler(registry=registry, interval=60.0)
        values = sampler.sample_once()
        assert values["threads"] >= 1
        assert registry.value("process_threads") >= 1
        assert sampler.samples == 1

    def test_admission_occupancy_sampled(self):
        from repro.serve.admission import AdmissionController, AdmissionLimits

        registry = MetricsRegistry()
        admission = AdmissionController(
            AdmissionLimits(max_inflight=4, max_queue=8), registry=registry
        )
        sampler = RuntimeSampler(
            registry=registry, interval=60.0, admission=admission
        )
        with admission.admit("asn"):
            values = sampler.sample_once()
        assert values["inflight_occupancy"] == pytest.approx(0.25)
        assert registry.value("serve_admission_inflight_occupancy") == pytest.approx(0.25)

    def test_start_stop(self):
        sampler = RuntimeSampler(registry=MetricsRegistry(), interval=60.0)
        with sampler:
            assert sampler.samples >= 1  # primed on start
        assert sampler._thread is None

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigError):
            RuntimeSampler(registry=MetricsRegistry(), interval=0.0)

    def test_rss_helper_nonnegative(self):
        assert _process_rss_bytes() >= 0


class TestQuantileHelpers:
    def test_percentile_nearest_rank(self):
        samples = list(range(1, 11))
        assert percentile(samples, 0.5) == 6
        assert percentile(samples, 0.0) == 1
        assert percentile(samples, 0.99) == 10
        assert percentile([], 0.5) == 0.0

    def test_histogram_quantile_interpolates(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            histogram.observe(1.5)
        # All mass in the (1, 2] bucket: p50 interpolates inside it.
        assert 1.0 < histogram.quantile(0.5) <= 2.0

    def test_histogram_quantile_empty_and_overflow(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        assert histogram.quantile(0.5) == 0.0
        histogram.observe(100.0)  # lands in +Inf bucket
        assert histogram.quantile(0.99) == 2.0  # clamps to top finite bound

    def test_histogram_summary_keys(self):
        histogram = Histogram(buckets=(0.001, 0.01, 0.1))
        for _ in range(10):
            histogram.observe(0.005)
        summary = histogram.summary()
        assert set(summary) == {"count", "mean", "p50", "p90", "p99"}
        assert summary["count"] == 10.0
        assert summary["mean"] == pytest.approx(0.005)
        assert 0.001 < summary["p50"] <= 0.01

    def test_loadgen_reexport_is_shared(self):
        from repro.serve.loadgen import percentile as loadgen_percentile

        assert loadgen_percentile is percentile
