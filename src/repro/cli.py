"""The ``borges`` command-line interface.

Subcommands:

* ``generate`` — build a synthetic universe and export its datasets
  (PeeringDB snapshot JSON, CAIDA-format as2org file, APNIC CSV).
* ``run`` — run the Borges pipeline and print headline results; can save
  the resulting mapping as JSON.
* ``experiment`` — regenerate a paper table/figure (``table3``..``fig9``
  or ``all``).
* ``compare`` — θ for AS2Org, as2org+ and Borges side by side.
* ``release`` — publish a run as a CAIDA-format as2org file.
* ``serve`` — boot the HTTP query API over a mapping snapshot, with
  request tracing, SLO burn-rate alerting and an optional access log.
* ``top`` — live terminal dashboard polling a running serve process.
* ``query`` — one-shot in-process lookups against a snapshot, or (with
  ``--host``/``--port``) against an already-running server.
* ``watch`` — the continuous-operation daemon: re-derive the mapping on
  a schedule, gate it against the active generation, archive it
  immutably and hot-swap it into a co-hosted query server.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path
from typing import Optional, Sequence

from . import __version__
from .baselines import build_as2org_mapping, build_as2orgplus_mapping
from .config import ALL_FEATURES, BorgesConfig, UniverseConfig
from .core import ALL_STAGES, BorgesPipeline
from .experiments import EXPERIMENTS, ExperimentContext, run_experiment
from .logutil import setup_logging
from .metrics import org_factor_from_mapping
from .obs import build_manifest, get_registry, get_tracer, write_manifest
from .peeringdb import save_snapshot
from .universe import generate_universe
from .whois import save_as2org_file


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="borges",
        description="Borges: AS-to-Organization mappings (IMC 2025 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="debug logging"
    )
    parser.add_argument(
        "--telemetry-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a JSON run manifest (spans, metrics, LLM usage) here",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="universe seed (default 42)"
    )
    parser.add_argument(
        "--fault-profile",
        choices=_fault_profile_names(),
        default=None,
        metavar="PROFILE",
        help=(
            "inject seeded faults from a named chaos profile "
            f"({', '.join(_fault_profile_names())}); overrides "
            "$BORGES_FAULT_PROFILE"
        ),
    )
    parser.add_argument(
        "--orgs",
        type=int,
        default=None,
        help="number of synthetic organizations (default: config default)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate and export a universe")
    gen.add_argument(
        "--out", type=Path, default=Path("datasets"), help="output directory"
    )
    gen.add_argument(
        "--stream",
        action="store_true",
        help=(
            "export chunk by chunk with bounded memory (output files are "
            "byte-identical to the default collect-all export)"
        ),
    )

    run = sub.add_parser("run", help="run the Borges pipeline")
    run.add_argument(
        "--features",
        nargs="*",
        choices=sorted(ALL_FEATURES),
        default=None,
        help="feature subset (default: all four)",
    )
    run.add_argument(
        "--save-mapping", type=Path, default=None, help="write mapping JSON here"
    )
    run.add_argument(
        "--save-as2org",
        type=Path,
        default=None,
        help="publish the mapping in CAIDA's as2org JSON-lines format",
    )
    run.add_argument(
        "--from-datasets",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "load peeringdb_snapshot.json + as2org.jsonl from DIR (as "
            "written by `borges generate`) instead of generating a "
            "universe; without a web driver the web features are skipped"
        ),
    )
    run.add_argument(
        "--stages",
        nargs="*",
        choices=sorted(ALL_STAGES),
        metavar="STAGE",
        default=None,
        help=(
            "restrict the run to these stages (plus their dependencies "
            "and the backbone); see --explain-plan for stage names"
        ),
    )
    run.add_argument(
        "--explain-plan",
        action="store_true",
        help="print the stage plan (order, deps, cache status) and exit",
    )
    run.add_argument(
        "--artifact-cache",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "persist stage artifacts to DIR; a re-run with the same "
            "inputs is served from cache instead of recomputing"
        ),
    )
    run.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help=(
            "partition the dataset into N org-closed shards and run one "
            "stage DAG per shard; the final mapping is byte-identical "
            "to an unsharded run"
        ),
    )
    run.add_argument(
        "--shard-workers",
        choices=("thread", "process"),
        default="thread",
        help=(
            "concurrency substrate for sharded runs: threads (share one "
            "GIL) or forked processes (CPU parallelism; results are "
            "byte-identical either way)"
        ),
    )
    _add_shard_fault_options(run)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument(
        "id",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (table3..table9, fig7..fig9, all)",
    )
    exp.add_argument(
        "--max-rows", type=int, default=25, help="row limit when rendering"
    )
    exp.add_argument(
        "--svg-dir",
        type=Path,
        default=None,
        help="also write figure experiments as SVG charts into this directory",
    )

    sub.add_parser("compare", help="theta for all methods side by side")

    telemetry = sub.add_parser(
        "telemetry",
        help="run the pipeline and print a per-stage telemetry summary",
    )
    telemetry.add_argument(
        "--prometheus",
        action="store_true",
        help="also print metrics in Prometheus text format",
    )
    telemetry.add_argument(
        "--artifact-cache",
        type=Path,
        default=None,
        metavar="DIR",
        help="use a persistent stage-artifact cache at DIR",
    )
    telemetry.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="run sharded (one stage DAG per org-closed shard)",
    )
    telemetry.add_argument(
        "--shard-workers",
        choices=("thread", "process"),
        default="thread",
        help="thread (default) or forked-process shard workers",
    )
    _add_shard_fault_options(telemetry)

    sub.add_parser(
        "evolution", help="longitudinal study: theta/orgs per historical year"
    )

    explain = sub.add_parser(
        "explain", help="show the evidence linking two ASNs (or one ASN's org)"
    )
    explain.add_argument("asn_a", type=int)
    explain.add_argument("asn_b", type=int, nargs="?", default=None)

    release = sub.add_parser(
        "release",
        help="run the pipeline and publish a CAIDA-format as2org file",
    )
    release.add_argument(
        "--out",
        type=Path,
        default=Path("borges_as2org.jsonl"),
        help="release file path (.gz for gzip; default borges_as2org.jsonl)",
    )
    release.add_argument(
        "--features",
        nargs="*",
        choices=sorted(ALL_FEATURES),
        default=None,
        help="feature subset (default: all four)",
    )

    serve = sub.add_parser(
        "serve", help="serve ASN->org queries over HTTP (the read path)"
    )
    _add_snapshot_option(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8642, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "serve with N forked worker processes sharing one read-only "
            "compiled snapshot behind SO_REUSEPORT (default 1: the "
            "classic single-process tier)"
        ),
    )
    serve.add_argument(
        "--pool-state",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "state directory for --workers mode (segments, generation "
            "pointer, per-worker state; default: under /dev/shm)"
        ),
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="concurrent requests admitted before queueing (0 disables "
        "admission control; default 64)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=128,
        help="requests allowed to wait for a slot before shedding with "
        "429 (default 128)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=1000.0,
        help="per-request deadline while queued, in milliseconds; doubles "
        "as the Retry-After hint on shed requests (default 1000)",
    )
    serve.add_argument(
        "--history",
        type=int,
        default=3,
        help="last-known-good generations retained for rollback (default 3)",
    )
    serve.add_argument(
        "--rollback",
        action="store_true",
        help="instead of serving, ask the server already running at "
        "--host/--port to roll back to its last-known-good snapshot",
    )
    serve.add_argument(
        "--access-log",
        type=Path,
        default=None,
        metavar="PATH",
        help="append structured JSONL events (access log, admission "
        "rejections, snapshot swaps) to this file",
    )
    serve.add_argument(
        "--access-log-sample",
        type=float,
        default=1.0,
        metavar="FRACTION",
        help="fraction of http.access events kept (default 1.0; "
        "warning+ events are never sampled away)",
    )
    serve.add_argument(
        "--no-slo",
        action="store_true",
        help="disable the SLO tracker, exemplar store and runtime sampler",
    )
    serve.add_argument(
        "--slo-availability",
        type=float,
        default=0.999,
        help="availability objective (default 0.999)",
    )
    serve.add_argument(
        "--slo-latency-ms",
        type=float,
        default=100.0,
        help="latency SLO threshold in milliseconds (default 100)",
    )
    serve.add_argument(
        "--slo-fast-window",
        type=float,
        default=300.0,
        help="fast burn-rate window in seconds (default 300)",
    )
    serve.add_argument(
        "--slo-slow-window",
        type=float,
        default=3600.0,
        help="slow burn-rate window in seconds (default 3600)",
    )
    serve.add_argument(
        "--burn-threshold",
        type=float,
        default=14.4,
        help="burn rate at which the SLO alert fires (default 14.4)",
    )
    serve.add_argument(
        "--exemplar-threshold-ms",
        type=float,
        default=50.0,
        help="requests slower than this are kept as exemplars with "
        "their span tree (default 50)",
    )
    serve.add_argument(
        "--sampler-interval",
        type=float,
        default=5.0,
        help="seconds between runtime gauge samples (default 5)",
    )

    top = sub.add_parser(
        "top",
        help="live terminal dashboard for a running serve process",
    )
    top.add_argument("--host", default="127.0.0.1", help="server address")
    top.add_argument(
        "--port", type=int, default=8642, help="server port (default 8642)"
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default 2)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="refresh this many times then exit (default: until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="print refreshes sequentially instead of clearing the screen",
    )
    top.add_argument(
        "--pool",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "watch a multi-worker pool instead: per-worker rows (pid, "
            "rps, in-flight, generation) from DIR's worker state files "
            "plus a machine-total line"
        ),
    )

    query = sub.add_parser(
        "query", help="one-shot lookups against a snapshot (no server)"
    )
    _add_snapshot_option(query)
    query.add_argument(
        "asns", type=int, nargs="*", help="ASNs to look up"
    )
    query.add_argument(
        "--org", default=None, metavar="ORG_ID", help="look up one organization"
    )
    query.add_argument(
        "--search", default=None, metavar="QUERY", help="search org names"
    )
    query.add_argument(
        "--siblings",
        type=int,
        nargs=2,
        default=None,
        metavar=("A", "B"),
        help="are these two ASNs mapped to the same organization?",
    )
    query.add_argument(
        "--host",
        default=None,
        help="query a running server at this address instead of loading "
        "a snapshot in-process",
    )
    query.add_argument(
        "--port", type=int, default=8642, help="server port (default 8642)"
    )
    query.add_argument(
        "--gen",
        type=int,
        default=None,
        metavar="N",
        help="time-travel: answer ASN lookups from archived generation N "
        "(requires --host; the server must run `borges watch`)",
    )

    watch = sub.add_parser(
        "watch",
        help="continuously re-derive, gate, archive and serve the mapping",
    )
    watch.add_argument(
        "--archive",
        type=Path,
        default=Path("watch-archive"),
        metavar="DIR",
        help="versioned snapshot archive directory (default watch-archive)",
    )
    watch.add_argument(
        "--journal",
        type=Path,
        default=None,
        metavar="PATH",
        help="run journal path (default: <archive>/journal.jsonl)",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=60.0,
        help="seconds between refresh cycles (default 60)",
    )
    watch.add_argument(
        "--cycles",
        type=int,
        default=0,
        help="stop after this many cycles (default 0 = run until Ctrl-C)",
    )
    watch.add_argument(
        "--evolve",
        action="store_true",
        help="advance the universe seed every cycle so the dataset digest "
        "changes (demo mode; without it an unchanged dataset is skipped)",
    )
    watch.add_argument(
        "--run-on-unchanged",
        action="store_true",
        help="re-publish even when the dataset digest already published",
    )
    watch.add_argument("--host", default="127.0.0.1", help="bind address")
    watch.add_argument(
        "--port", type=int, default=8642, help="bind port (0 = ephemeral)"
    )
    watch.add_argument(
        "--no-http",
        action="store_true",
        help="run the refresh loop without the co-hosted query server",
    )
    watch.add_argument(
        "--max-org-shrink", type=float, default=0.20,
        help="gate: max fractional org-count shrink (default 0.20)",
    )
    watch.add_argument(
        "--max-org-growth", type=float, default=0.50,
        help="gate: max fractional org-count growth (default 0.50)",
    )
    watch.add_argument(
        "--max-coverage-drop", type=float, default=0.05,
        help="gate: max fractional ASN-coverage drop (default 0.05)",
    )
    watch.add_argument(
        "--max-churn", type=float, default=0.35,
        help="gate: max fraction of common ASNs changing org (default 0.35)",
    )
    watch.add_argument(
        "--min-precision", type=float, default=0.0,
        help="gate: ground-truth pairwise-precision floor (default 0: off)",
    )
    watch.add_argument(
        "--archive-max-entries", type=int, default=64,
        help="archive retention: generations kept (default 64)",
    )
    watch.add_argument(
        "--archive-max-bytes", type=int, default=0,
        help="archive retention: total bytes kept (default 0 = unbounded)",
    )
    watch.add_argument(
        "--free-bytes-floor", type=int, default=0,
        help="refuse publishes when free disk falls below this (default 0)",
    )
    watch.add_argument(
        "--max-restarts", type=int, default=5,
        help="halt the loop after this many failures in the restart "
        "window (default 5); serving continues",
    )
    watch.add_argument(
        "--restart-window", type=float, default=600.0,
        help="restart-budget window in seconds (default 600)",
    )
    watch.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="run each refresh sharded; completed shards are journaled "
        "to <archive>/shard-checkpoint.jsonl so a mid-refresh crash "
        "resumes from the finished shards (default 1 = unsharded)",
    )
    watch.add_argument(
        "--shard-retries", type=int, default=1, metavar="N",
        help="per-shard retry budget during sharded refreshes (default 1)",
    )
    watch.add_argument(
        "--shard-deadline", type=float, default=0.0, metavar="SECONDS",
        help="kill and retry a shard attempt running past SECONDS "
        "(default 0 = no deadline)",
    )
    return parser


def _add_snapshot_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--snapshot",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "mapping snapshot to serve: a CAIDA-format as2org file (as "
            "written by `borges release`) or an OrgMapping JSON (as "
            "written by `borges run --save-mapping`); default: run the "
            "pipeline on a fresh synthetic universe"
        ),
    )


def _add_shard_fault_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shard-retries",
        type=int,
        default=1,
        metavar="N",
        help=(
            "retry a failed/crashed/hung shard up to N more times before "
            "quarantining it (default 1)"
        ),
    )
    parser.add_argument(
        "--shard-deadline",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "kill a shard attempt that runs past SECONDS and retry it "
            "(0 = no deadline; a hang fault profile implies one)"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "journal each completed shard to PATH so a crashed or "
            "degraded sharded run can be resumed with --resume"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from the checkpoint: shards already journaled for "
            "this run identity are not re-run (default checkpoint path "
            "borges-checkpoint.jsonl when --checkpoint is omitted)"
        ),
    )


def _shard_fault_kwargs(args: argparse.Namespace) -> dict:
    checkpoint = args.checkpoint
    if checkpoint is None and args.resume:
        checkpoint = Path("borges-checkpoint.jsonl")
    return {
        "shard_retries": max(0, args.shard_retries),
        "shard_deadline": args.shard_deadline or None,
        "checkpoint_path": checkpoint,
        "resume": args.resume,
    }


def _fault_profile_names() -> Sequence[str]:
    from .resilience.faults import PROFILES

    return sorted(PROFILES)


def _borges_config(args: argparse.Namespace) -> BorgesConfig:
    config = BorgesConfig()
    if getattr(args, "fault_profile", None):
        config = config.with_fault_profile(args.fault_profile)
    return config


def _universe_config(args: argparse.Namespace) -> UniverseConfig:
    config = UniverseConfig(seed=args.seed)
    if args.orgs is not None:
        import dataclasses

        config = dataclasses.replace(config, n_organizations=args.orgs)
    return config.validate()


def _cmd_generate(args: argparse.Namespace) -> int:
    out: Path = args.out
    if args.stream:
        from .obs import record_peak_rss
        from .universe import export_universe_streaming

        def progress(index: int, total: int, asns: int) -> None:
            if args.verbose:
                print(f"  chunk {index + 1}/{total}: {asns:,} ASNs exported")

        summary = export_universe_streaming(
            _universe_config(args), out, progress=progress
        )
        peak = record_peak_rss()
        print(f"exported universe (seed {args.seed}) to {out}/ [streamed]")
        for key, value in sorted(summary.items()):
            print(f"  {key}: {value:,}")
        print(f"  peak_rss_mib: {peak / (1 << 20):,.0f}")
        return 0
    universe = generate_universe(_universe_config(args))
    out.mkdir(parents=True, exist_ok=True)
    save_snapshot(universe.pdb, out / "peeringdb_snapshot.json")
    save_as2org_file(universe.whois, out / "as2org.jsonl")
    universe.apnic.save_csv(out / "apnic_population.csv")
    print(f"exported universe (seed {args.seed}) to {out}/")
    for key, value in sorted(universe.summary().items()):
        print(f"  {key}: {value:,.0f}")
    return 0


def _artifact_store(args: argparse.Namespace):
    if getattr(args, "artifact_cache", None) is None:
        return None
    from .core import ArtifactStore

    return ArtifactStore(root=args.artifact_cache)


def _stage_summary_lines(result) -> Sequence[str]:
    records = result.stage_records
    cached = sum(1 for r in records if r["status"] == "cached")
    lines = [
        f"stages: {len(records)} planned, {cached} served from cache, "
        f"{sum(1 for r in records if r['status'] == 'ok')} computed"
    ]
    for record in records:
        duration_ms = 1000.0 * float(record.get("duration_seconds", 0.0))
        stage = str(record["stage"])
        if record.get("shard") is not None:
            stage = f"{stage}#{record['shard']}"
        lines.append(
            f"  {stage:<12} {record['status']:<8} "
            f"{(record['source'] or '-'):<9} {duration_ms:>8.1f} ms  "
            f"[{record['fingerprint'][:12]}]"
        )
    return lines


def _shard_summary_lines(result) -> Sequence[str]:
    """Partition + per-shard accounting of a `run_sharded` result."""
    partition = result.diagnostics.get("partition", {})
    lines = [
        f"shards: {partition.get('shards')} "
        f"(requested {partition.get('requested_shards')}), "
        f"{partition.get('components'):,} components over "
        f"{partition.get('asns'):,} ASNs "
        f"(largest component {partition.get('largest_component'):,})"
    ]
    for shard in result.diagnostics.get("shards", []):
        status = str(shard.get("status", "ok"))
        suffix = ""
        if status == "quarantined":
            suffix = (
                f"  QUARANTINED after {shard.get('attempts', 0)} attempts"
                f" ({shard.get('error', '')})"
            )
        elif status == "resumed":
            suffix = "  resumed from checkpoint"
        elif shard.get("degraded"):
            suffix = "  DEGRADED"
        lines.append(
            f"  shard {shard['shard']}: {shard['asns']:>7,} ASNs "
            f"{shard['components']:>6,} components "
            f"{1000.0 * float(shard['duration_seconds']):>8.1f} ms  "
            f"{shard['llm_requests']:>5} llm requests"
            + suffix
        )
    fault = result.diagnostics.get("fault_tolerance")
    if isinstance(fault, dict):
        posture = result.shard_posture() if hasattr(result, "shard_posture") else {}
        lines.append(
            f"shard posture: {posture.get('ok', 0)}/{posture.get('shards', 0)} ok, "
            f"{len(fault.get('failed_shards', []))} quarantined, "
            f"{len(fault.get('resumed_shards', []))} resumed, "
            f"{fault.get('retry_total', 0)} retries"
            + (" — SALVAGED (degraded mapping)" if fault.get("failed_shards") else "")
        )
        checkpoint = fault.get("checkpoint")
        if isinstance(checkpoint, dict):
            lines.append(
                f"checkpoint: {checkpoint.get('path')} "
                f"({len(checkpoint.get('completed_shards', []))} shards journaled)"
            )
    return lines


def _peak_rss_line(result) -> Optional[str]:
    peak = result.diagnostics.get("peak_rss_bytes")
    if not peak:
        return None
    return f"peak rss: {float(peak) / (1 << 20):,.0f} MiB"


def _cmd_run(args: argparse.Namespace) -> int:
    from .web.simweb import SimulatedWeb

    config = _borges_config(args)
    if args.features is not None:
        config = config.with_features(*args.features)
    store = _artifact_store(args)
    if args.from_datasets is not None:
        from .peeringdb import load_snapshot
        from .whois import load_as2org_file

        directory: Path = args.from_datasets
        pdb = load_snapshot(directory / "peeringdb_snapshot.json")
        whois = load_as2org_file(directory / "as2org.jsonl")
        # Real deployments point the scraper at the live web; from bare
        # dataset files the web features have nothing to crawl.
        web = SimulatedWeb()
        if args.features is None:
            config = config.with_features("oid_p", "notes_aka")
            print(
                "note: no web driver for dataset files — running with "
                "features oid_p + notes_aka"
            )
        pipeline = BorgesPipeline(whois, pdb, web, config, artifact_store=store)
    else:
        universe = generate_universe(_universe_config(args))
        whois, pdb, web = universe.whois, universe.pdb, universe.web
        pipeline = BorgesPipeline(whois, pdb, web, config, artifact_store=store)
    if args.explain_plan:
        print(pipeline.explain_plan(args.stages))
        return 0
    if args.shards > 1:
        from .core import run_sharded

        result = run_sharded(
            whois,
            pdb,
            web,
            config,
            n_shards=args.shards,
            stages=args.stages,
            artifact_store=store,
            shard_workers=args.shard_workers,
            **_shard_fault_kwargs(args),
        )
        _RUN_ARTIFACTS.update(config=config, result=result)
    else:
        result = pipeline.run(stages=args.stages)
        _RUN_ARTIFACTS.update(
            config=pipeline.config, result=result, client=pipeline.client
        )
    if result.degraded:
        print("WARNING: run completed DEGRADED — features lost to failures:")
        for name, error in sorted(result.feature_errors.items()):
            print(f"  {name}: {error}")
    print(f"method: {result.mapping.method}")
    for row in result.feature_table():
        print(f"  {row['source']:>10}: {row['asns']:>7,} ASes, {row['orgs']:>7,} orgs")
    theta = org_factor_from_mapping(result.mapping)
    print(f"organizations: {len(result.mapping):,}")
    print(f"organization factor (theta): {theta:.4f}")
    if args.shards > 1:
        for line in _shard_summary_lines(result):
            print(line)
        print(f"llm usage: {result.diagnostics.get('llm_requests', 0)} requests")
        rss_line = _peak_rss_line(result)
        if rss_line:
            print(rss_line)
    else:
        usage = pipeline.client.total_usage
        print(
            f"llm usage: {pipeline.client.request_count} requests, "
            f"{usage.total_tokens:,} tokens (~${usage.cost_usd():.4f})"
        )
        print(_cache_summary_line(result.diagnostics.get("llm_cache", {})))
    if store is not None:
        for line in _stage_summary_lines(result):
            print(line)
    if args.save_mapping:
        result.mapping.save(args.save_mapping)
        print(f"mapping saved to {args.save_mapping}")
    if args.save_as2org:
        from .core.release import save_mapping_as2org

        save_mapping_as2org(result.mapping, whois, args.save_as2org)
        print(f"CAIDA-format mapping saved to {args.save_as2org}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    context = ExperimentContext.build(_universe_config(args))
    ids = sorted(EXPERIMENTS) if args.id == "all" else [args.id]
    for experiment_id in ids:
        report = run_experiment(experiment_id, context=context)
        print(report.render(max_rows=args.max_rows))
        if args.svg_dir is not None:
            from .experiments.svg import save_report_svg

            path = save_report_svg(report, args.svg_dir)
            if path is not None:
                print(f"svg written to {path}")
        print()
    return 0


#: Artifacts the last command produced, for the --telemetry-out manifest.
_RUN_ARTIFACTS: dict = {}


def _cache_summary_line(stats: dict) -> str:
    hits = int(stats.get("hits", 0))
    misses = int(stats.get("misses", 0))
    lookups = hits + misses
    rate = 100.0 * hits / lookups if lookups else 0.0
    return (
        f"llm cache: {hits:,} hits, {misses:,} misses "
        f"({rate:.1f}% hit rate, {int(stats.get('entries', 0)):,} entries)"
    )


def _print_span_tree(spans, indent: int = 0) -> None:
    for span in spans:
        print(f"  {'  ' * indent}{span.name:<{30 - 2 * indent}} "
              f"{span.duration * 1000:>9.1f} ms  [{span.status}]")
        _print_span_tree(span.children, indent + 1)


def _cmd_telemetry(args: argparse.Namespace) -> int:
    universe = generate_universe(_universe_config(args))
    config = _borges_config(args)
    if args.shards > 1:
        from .core import run_sharded

        result = run_sharded(
            universe.whois,
            universe.pdb,
            universe.web,
            config,
            n_shards=args.shards,
            artifact_store=_artifact_store(args),
            shard_workers=args.shard_workers,
            **_shard_fault_kwargs(args),
        )
        _RUN_ARTIFACTS.update(config=config, result=result)
    else:
        pipeline = BorgesPipeline(
            universe.whois, universe.pdb, universe.web, config,
            artifact_store=_artifact_store(args),
        )
        result = pipeline.run()
        _RUN_ARTIFACTS.update(
            config=pipeline.config, result=result, client=pipeline.client
        )
    print("stage execution:")
    for line in _stage_summary_lines(result):
        print(line)
    print("stage timings:")
    _print_span_tree(get_tracer().spans())
    if args.shards > 1:
        for line in _shard_summary_lines(result):
            print(line)
        print(f"llm usage: {result.diagnostics.get('llm_requests', 0)} requests")
    else:
        usage = pipeline.client.total_usage
        print(
            f"llm usage: {pipeline.client.request_count} requests, "
            f"{usage.prompt_tokens:,} prompt + {usage.completion_tokens:,} "
            f"completion tokens (~${usage.cost_usd():.4f})"
        )
        print(_cache_summary_line(pipeline.client.cache_stats()))
    rss_line = _peak_rss_line(result)
    if rss_line:
        print(rss_line)
    print(f"organizations: {len(result.mapping):,}")
    resilience = result.diagnostics.get("resilience", {})
    if isinstance(resilience, dict) and resilience.get("fault_profile") != "none":
        print(f"fault profile: {resilience.get('fault_profile')}")
        for label, count in sorted(
            dict(resilience.get("faults_injected", {})).items()
        ):
            print(f"  injected {label}: {count}")
    if result.degraded:
        print(f"DEGRADED run; failed features: {sorted(result.feature_errors)}")
    registry = get_registry()
    print(f"metric families: {len(registry.families())}")
    if args.prometheus:
        from .obs import render_prometheus

        print()
        print(render_prometheus(registry), end="")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .baselines import build_chen_mapping

    universe = generate_universe(_universe_config(args))
    borges = BorgesPipeline(universe.whois, universe.pdb, universe.web).run().mapping
    as2org = build_as2org_mapping(universe.whois)
    as2orgplus = build_as2orgplus_mapping(universe.whois, universe.pdb)
    chen = build_chen_mapping(universe.whois, universe.pdb)
    baseline = org_factor_from_mapping(as2org)
    print(f"{'method':<14} {'theta':>8} {'vs AS2Org':>10} {'orgs':>8}")
    for name, mapping in (
        ("AS2Org", as2org),
        ("as2org+", as2orgplus),
        ("chen-mismatch", chen),
        ("Borges", borges),
    ):
        theta = org_factor_from_mapping(mapping)
        delta = 100.0 * (theta / baseline - 1.0)
        print(f"{name:<14} {theta:>8.4f} {delta:>+9.2f}% {len(mapping):>8,}")
    return 0


def _cmd_evolution(args: argparse.Namespace) -> int:
    from .longitudinal import build_snapshot_series, run_longitudinal_study

    universe = generate_universe(_universe_config(args))
    series = build_snapshot_series(universe)
    report = run_longitudinal_study(series)
    print(f"{'year':>6} {'theta':>8} {'orgs':>8} {'pending M&A':>12}")
    for snapshot, result in zip(series.snapshots, report.results):
        print(
            f"{result.year:>6} {result.theta:>8.4f} {result.org_count:>8,} "
            f"{len(snapshot.pending_brand_ids):>12}"
        )
    print(f"merge events detected between snapshots: {len(report.merges)}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .core.evidence import MappingExplainer, collect_evidence

    universe = generate_universe(_universe_config(args))
    pipeline = BorgesPipeline(universe.whois, universe.pdb, universe.web)
    result = pipeline.run()
    explainer = MappingExplainer(
        collect_evidence(result, universe.whois, universe.pdb)
    )
    mapping = result.mapping
    a = args.asn_a
    if a not in mapping:
        print(f"AS{a} is not a delegated ASN in this universe")
        return 1
    if args.asn_b is None:
        cluster = sorted(mapping.cluster_of(a))
        print(
            f"AS{a} belongs to {mapping.org_name_of(a)!r} "
            f"({len(cluster)} networks): {cluster}"
        )
        for item in explainer.evidence_for(a):
            print(f"  {item.describe()}")
        return 0
    b = args.asn_b
    if not mapping.are_siblings(a, b):
        print(f"AS{a} and AS{b} are NOT mapped to the same organization")
        return 0
    confidence = explainer.confidence(a, b)
    print(
        f"AS{a} and AS{b} are siblings ({mapping.org_name_of(a)!r}); "
        f"confidence: {confidence}; evidence:"
    )
    chain = explainer.why_siblings(a, b) or []
    for step, item in enumerate(chain, start=1):
        print(f"  {step}. {item.describe()}")
    for item in explainer.direct_support(a, b)[1:4]:
        if item not in chain:
            print(f"  also: {item.describe()}")
    return 0


def _cmd_release(args: argparse.Namespace) -> int:
    from .core.release import save_mapping_as2org

    config = _borges_config(args)
    if args.features is not None:
        config = config.with_features(*args.features)
    universe = generate_universe(_universe_config(args))
    pipeline = BorgesPipeline(universe.whois, universe.pdb, universe.web, config)
    result = pipeline.run()
    _RUN_ARTIFACTS.update(
        config=pipeline.config, result=result, client=pipeline.client
    )
    save_mapping_as2org(result.mapping, universe.whois, args.out)
    print(
        f"released {len(result.mapping):,} organizations "
        f"({result.mapping.universe_size:,} ASNs) to {args.out}"
    )
    print(f"serve it with: borges serve --snapshot {args.out}")
    return 0


def _sniff_snapshot_kind(path: Path) -> str:
    """``release`` (as2org JSON-lines), ``mapping`` (OrgMapping JSON) or
    ``blob`` (compiled snapshot)."""
    from .serve.shm import BLOB_MAGIC, BLOB_SUFFIX

    if path.suffix == BLOB_SUFFIX:
        return "blob"
    with open(path, "rb") as fh:
        if fh.read(len(BLOB_MAGIC)) == BLOB_MAGIC:
            return "blob"
    if path.suffix == ".gz" or path.suffix == ".jsonl":
        return "release"
    import json as _json

    from .whois.as2org_file import RELEASE_HEADER_PREFIX

    first = ""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith(RELEASE_HEADER_PREFIX.rstrip()):
                return "release"
            if stripped.startswith("#"):
                continue  # other comments say nothing about the format
            first = stripped
            break
    try:
        record = _json.loads(first)
    except ValueError:
        return "mapping"
    if isinstance(record, dict) and record.get("type") in ("Organization", "ASN"):
        return "release"
    return "mapping"


def _serve_injector(args: argparse.Namespace):
    """A seeded FaultInjector when a chaos profile is in force, else None."""
    from .resilience.faults import FaultInjector, resolve_fault_profile

    profile = resolve_fault_profile(getattr(args, "fault_profile", None))
    if not profile.active:
        return None
    return FaultInjector(profile, seed=args.seed, registry=get_registry())


def _build_service(args: argparse.Namespace):
    """A QueryService with one generation loaded per the CLI options."""
    from .obs.log import EventLog, set_event_log
    from .obs.slo import ExemplarStore, SLOConfig, SLOTracker
    from .serve import AdmissionController, AdmissionLimits, QueryService
    from .serve.store import SnapshotStore

    registry = get_registry()
    injector = _serve_injector(args)
    admission = None
    max_inflight = getattr(args, "max_inflight", 0)
    if max_inflight:
        limits = AdmissionLimits(
            max_inflight=max_inflight,
            max_queue=getattr(args, "max_queue", 128),
            default_deadline=getattr(args, "deadline_ms", 1000.0) / 1000.0,
        ).validate()
        admission = AdmissionController(limits, registry=registry)
    store = SnapshotStore(
        registry=registry,
        history_limit=getattr(args, "history", 3),
        injector=injector,
    )
    slo = None
    exemplars = None
    if not getattr(args, "no_slo", True):
        slo = SLOTracker(
            SLOConfig(
                availability_objective=getattr(args, "slo_availability", 0.999),
                latency_threshold=getattr(args, "slo_latency_ms", 100.0) / 1e3,
                fast_window_seconds=getattr(args, "slo_fast_window", 300.0),
                slow_window_seconds=getattr(args, "slo_slow_window", 3600.0),
                burn_rate_threshold=getattr(args, "burn_threshold", 14.4),
            ),
            registry=registry,
        )
        exemplars = ExemplarStore(
            threshold=getattr(args, "exemplar_threshold_ms", 50.0) / 1e3
        )
    event_log = None
    access_log = getattr(args, "access_log", None)
    if access_log is not None:
        # File-sinked log, installed globally so admission/store/executor
        # events land in the same JSONL stream as http.access.
        event_log = EventLog(path=access_log)
        set_event_log(event_log)
    service = QueryService(
        store=store,
        registry=registry,
        admission=admission,
        injector=injector,
        slo=slo,
        exemplars=exemplars,
        event_log=event_log,
        access_log_sample=getattr(args, "access_log_sample", 1.0),
    )
    if args.snapshot is not None:
        path: Path = args.snapshot
        kind = _sniff_snapshot_kind(path)
        if kind == "release":
            snapshot = service.store.load_from_release_file(path)
        elif kind == "blob":
            snapshot = service.store.load_from_blob_file(path)
        else:
            snapshot = service.store.load_from_mapping_file(path)
    else:
        universe = generate_universe(_universe_config(args))
        pipeline = BorgesPipeline(
            universe.whois, universe.pdb, universe.web, _borges_config(args)
        )
        result = pipeline.run()
        _RUN_ARTIFACTS.update(
            config=pipeline.config, result=result, client=pipeline.client
        )
        snapshot = service.store.load_from_mapping(
            result.mapping,
            whois=universe.whois,
            pdb=universe.pdb,
            label=f"pipeline seed={args.seed}",
        )
    described = snapshot.describe()
    print(
        f"snapshot generation {described['generation']}: "
        f"{described['orgs']:,} orgs / {described['asns']:,} ASNs "
        f"from {described['source']} ({described['label']})"
    )
    _RUN_ARTIFACTS["service"] = service
    return service


def _cmd_rollback_client(args: argparse.Namespace) -> int:
    """POST /v1/admin/rollback against an already-running server."""
    import json as _json
    import urllib.error
    import urllib.request

    url = f"http://{args.host}:{args.port}/v1/admin/rollback"
    request = urllib.request.Request(url, data=b"{}", method="POST")
    request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            body = _json.loads(response.read())
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace").strip()
        print(f"rollback refused ({exc.code}): {detail}")
        return 1
    except OSError as exc:
        print(f"rollback failed: cannot reach {url}: {exc}")
        return 1
    print(
        f"rolled back to generation {body['generation']} "
        f"({body['restored']}; {body['orgs']:,} orgs / {body['asns']:,} ASNs)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .obs.slo import RuntimeSampler
    from .serve import QueryServer

    if args.rollback:
        return _cmd_rollback_client(args)
    if args.workers > 1:
        return _cmd_serve_pool(args)
    service = _build_service(args)
    server = QueryServer(service, host=args.host, port=args.port)
    sampler = None
    if service.slo is not None:
        sampler = RuntimeSampler(
            registry=service.registry,
            interval=args.sampler_interval,
            admission=service.admission,
        ).start()
    print(f"serving on {server.url}  (Ctrl-C to stop)")
    if service.admission is not None:
        limits = service.admission.limits
        print(
            f"admission: {limits.max_inflight} in-flight / "
            f"{limits.max_queue} queued, "
            f"{limits.default_deadline * 1e3:.0f} ms deadline"
        )
    if service.slo is not None:
        config = service.slo.config
        print(
            f"slo: availability {config.availability_objective}, "
            f"latency {config.latency_threshold * 1e3:.0f} ms @ "
            f"{config.latency_objective}; alerts at burn "
            f"{config.burn_rate_threshold} "
            f"({config.fast_window_seconds:.0f}s/"
            f"{config.slow_window_seconds:.0f}s windows)"
        )
    if args.access_log is not None:
        print(f"access log: {args.access_log}")
    print(f"  watch: borges top --host {args.host} --port {server.port}")
    print(f"  try: curl {server.url}/v1/asn/{next(iter(service.store.current().index.asns()))}")
    try:
        server.serve_until_interrupt()
    finally:
        if sampler is not None:
            sampler.stop()
        log = service.event_log
        if log.path is not None:
            log.close()
    stats = service.stats()
    print("server stopped; request totals:")
    for key, value in sorted(dict(stats["requests"]).items()):
        print(f"  {key}: {value:,.0f}")
    return 0


def _cmd_serve_pool(args: argparse.Namespace) -> int:
    """``borges serve --workers N``: the multi-process tier.

    The snapshot is loaded once (any kind ``--snapshot`` accepts, or a
    fresh pipeline run), compiled to one read-only blob, and N forked
    workers map it behind ``SO_REUSEPORT``.  A blob snapshot skips the
    compile — its bytes are republished as-is.
    """
    from .serve.shm import BlobIndex, WorkerConfig, WorkerPool, compile_index

    service = _build_service(args)
    index = service.store.current().index
    blob = (
        bytes(index._buf)
        if isinstance(index, BlobIndex)
        else compile_index(index)
    )
    config = WorkerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        history_limit=args.history,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        deadline=args.deadline_ms / 1000.0,
    )
    pool = WorkerPool(config, state_dir=args.pool_state)
    pool.start(blob)
    print(
        f"serving on {pool.url} with {args.workers} worker processes "
        f"over one {len(blob):,}-byte shared snapshot  (Ctrl-C to stop)"
    )
    print(f"  pool state: {pool.state_dir}")
    print(f"  watch: borges top --pool {pool.state_dir}")
    asns = service.store.current().index.asns()
    if asns:
        print(f"  try: curl {pool.url}/v1/asn/{asns[0]}")
    pool.serve_until_interrupt()
    print(f"pool stopped after {pool.respawns} worker respawns")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .serve.top import run_top

    return run_top(
        host=args.host,
        port=args.port,
        interval=args.interval,
        iterations=args.iterations,
        clear=not args.no_clear,
        pool=args.pool,
    )


def _cmd_query_remote(args: argparse.Namespace) -> int:
    """``borges query --host``: the same lookups over a running server."""
    import json as _json
    import urllib.error
    import urllib.parse
    import urllib.request

    base = f"http://{args.host}:{args.port}"
    requests: list = []
    gen_suffix = f"?gen={args.gen}" if args.gen is not None else ""
    for asn in args.asns:
        requests.append(f"/v1/asn/{asn}{gen_suffix}")
    if args.org:
        requests.append(f"/v1/org/{urllib.parse.quote(args.org)}")
    if args.search:
        requests.append(f"/v1/search?q={urllib.parse.quote(args.search)}")
    if args.siblings:
        a, b = args.siblings
        requests.append(f"/v1/siblings?a={a}&b={b}")
    status = 0
    for path in requests:
        try:
            with urllib.request.urlopen(base + path, timeout=10.0) as response:
                body = _json.loads(response.read())
        except urllib.error.HTTPError as exc:
            # The server answered: print its error body, flag the exit
            # code, keep going — other lookups may still succeed.
            try:
                body = _json.loads(exc.read())
            except ValueError:
                body = {"error": f"HTTP {exc.code}"}
            body["status"] = exc.code
            status = 1
        except (OSError, ValueError):
            print(f"server unreachable at {args.host}:{args.port}")
            return 1
        print(_json.dumps(body, indent=2, sort_keys=True))
    return status


def _cmd_query(args: argparse.Namespace) -> int:
    import json as _json

    from .errors import DataError

    if not (args.asns or args.org or args.search or args.siblings):
        print("error: nothing to query (pass ASNs, --org, --search or --siblings)")
        return 2
    if args.host is not None:
        return _cmd_query_remote(args)
    if args.gen is not None:
        print("error: --gen needs --host (the archive lives with the server)")
        return 2
    service = _build_service(args)
    status = 0
    responses = []
    try:
        if args.asns:
            responses.extend(service.batch_lookup(args.asns))
        if args.org:
            responses.append(service.lookup_org(args.org))
        if args.search:
            responses.append(service.search(args.search))
        if args.siblings:
            responses.append(service.siblings(*args.siblings))
    except DataError as exc:
        print(f"error: {exc}")
        return 1
    for response in responses:
        if "error" in response:
            status = 1
        print(_json.dumps(response, indent=2, sort_keys=True))
    return status


def _cmd_watch(args: argparse.Namespace) -> int:
    import dataclasses as _dataclasses

    from .digest import dataset_digest, stable_digest
    from .metrics.partition import score_partition
    from .serve import QueryServer, QueryService
    from .serve.store import SnapshotStore
    from .watch import (
        GateThresholds,
        RunJournal,
        SnapshotArchive,
        WatchConfig,
        WatchDaemon,
        WatchRunResult,
    )

    registry = get_registry()
    injector = _serve_injector(args)
    config = _borges_config(args)
    store = SnapshotStore(registry=registry, injector=injector)
    archive = SnapshotArchive(
        args.archive,
        max_entries=args.archive_max_entries,
        max_bytes=args.archive_max_bytes,
        free_bytes_floor=args.free_bytes_floor,
        registry=registry,
        injector=injector,
    )
    journal_path = args.journal or args.archive / "journal.jsonl"
    journal = RunJournal(journal_path)
    store.attach_archive(archive)
    service = QueryService(store=store, registry=registry, injector=injector)

    cycle_seed = {"n": 0}

    def runner() -> WatchRunResult:
        seed = args.seed + (cycle_seed["n"] if args.evolve else 0)
        cycle_seed["n"] += 1
        universe_config = _universe_config(args)
        if seed != universe_config.seed:
            universe_config = _dataclasses.replace(universe_config, seed=seed)
        universe = generate_universe(universe_config)
        shard_posture = None
        if args.shards > 1:
            from .core import run_sharded

            # Every refresh journals completed shards and resumes from
            # them: a mid-refresh crash re-runs only what's missing.
            result = run_sharded(
                universe.whois,
                universe.pdb,
                universe.web,
                config,
                n_shards=args.shards,
                shard_retries=max(0, args.shard_retries),
                shard_deadline=args.shard_deadline or None,
                checkpoint_path=args.archive / "shard-checkpoint.jsonl",
                resume=True,
            )
            shard_posture = result.shard_posture()
        else:
            pipeline = BorgesPipeline(
                universe.whois, universe.pdb, universe.web, config
            )
            result = pipeline.run()
        precision = score_partition(
            result.mapping.clusters(), universe.ground_truth.true_clusters()
        ).pair_precision
        digest = stable_digest(
            [dataset_digest(universe.whois), dataset_digest(universe.pdb)]
        )
        return WatchRunResult(
            mapping=result.mapping,
            dataset_digest=digest,
            label=f"seed={seed}",
            whois=universe.whois,
            pdb=universe.pdb,
            precision=precision,
            shard_posture=shard_posture,
        )

    thresholds = GateThresholds(
        max_org_shrink=args.max_org_shrink,
        max_org_growth=args.max_org_growth,
        max_coverage_drop=args.max_coverage_drop,
        max_churn=args.max_churn,
        min_precision=args.min_precision,
    )
    daemon = WatchDaemon(
        store,
        archive,
        journal,
        runner,
        WatchConfig(
            interval=args.interval,
            max_cycles=args.cycles,
            thresholds=thresholds,
            max_restarts=args.max_restarts,
            restart_window=args.restart_window,
            run_on_unchanged=args.run_on_unchanged,
        ),
        registry=registry,
        injector=injector,
    )
    service.attach_watch(daemon)
    server = None
    if not args.no_http:
        server = QueryServer(service, host=args.host, port=args.port).start()
        print(f"serving on {server.url}  (Ctrl-C to stop)")
        print(f"  admin: curl {server.url}/v1/admin/watch")
    print(
        f"watch: every {args.interval:g}s"
        + (f", {args.cycles} cycles" if args.cycles else "")
        + f"; archive {args.archive} (keep {args.archive_max_entries}); "
        f"journal {journal_path}"
    )
    try:
        cycles = daemon.run()
    except KeyboardInterrupt:
        cycles = daemon.cycles
    finally:
        if server is not None:
            server.stop()
    print(
        f"watch stopped after {cycles} cycles "
        f"(last outcome: {daemon.last_outcome or 'none'})"
    )
    archive_stats = archive.stats()
    print(
        f"archive: {archive_stats['entries']} generations "
        f"({archive_stats['oldest_generation']}.."
        f"{archive_stats['newest_generation']}), "
        f"{archive_stats['total_bytes']:,} bytes"
    )
    if daemon.halted:
        print(
            f"HALTED: {args.max_restarts} failures within "
            f"{args.restart_window:g}s — last error: {daemon.last_error}"
        )
        return 1
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "run": _cmd_run,
    "experiment": _cmd_experiment,
    "compare": _cmd_compare,
    "evolution": _cmd_evolution,
    "explain": _cmd_explain,
    "telemetry": _cmd_telemetry,
    "release": _cmd_release,
    "serve": _cmd_serve,
    "top": _cmd_top,
    "query": _cmd_query,
    "watch": _cmd_watch,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(logging.DEBUG if args.verbose else logging.WARNING)
    _RUN_ARTIFACTS.clear()
    status = _COMMANDS[args.command](args)
    if args.telemetry_out is not None:
        manifest = build_manifest(
            config=_RUN_ARTIFACTS.get("config"),
            result=_RUN_ARTIFACTS.get("result"),
            client=_RUN_ARTIFACTS.get("client"),
            service=_RUN_ARTIFACTS.get("service"),
            slo=getattr(_RUN_ARTIFACTS.get("service"), "slo", None),
        )
        try:
            path = write_manifest(args.telemetry_out, manifest)
        except OSError as exc:
            print(
                f"error: cannot write telemetry manifest to "
                f"{args.telemetry_out}: {exc}",
                file=sys.stderr,
            )
            return status or 1
        print(f"telemetry manifest written to {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
