"""Shared fixtures for the benchmark suite.

Benches run at the default (paper-shaped, ≈14k-ASN) scale; the context is
built once per session.  Every bench times its experiment with a single
pedantic round (these are dataset-scale computations, not microbenches)
and prints the regenerated table so `pytest benchmarks/ --benchmark-only`
doubles as the paper-reproduction harness.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext

#: Set this to a directory to write one telemetry manifest per bench —
#: stage-level spans and metrics land next to the pytest-benchmark JSON,
#: so BENCH_* trajectories carry per-stage timing, not just totals.
TELEMETRY_ENV = "BORGES_BENCH_TELEMETRY"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext.build()


def _write_bench_manifest(ctx, experiment_id: str) -> None:
    out_dir = os.environ.get(TELEMETRY_ENV)
    if not out_dir:
        return
    from repro.obs import build_manifest, write_manifest

    manifest = build_manifest(
        config=ctx.pipeline.config,
        result=ctx.result,
        client=ctx.pipeline.client,
        extra={"bench": experiment_id},
    )
    path = write_manifest(
        Path(out_dir) / f"manifest_{experiment_id}.json", manifest
    )
    print(f"telemetry manifest written to {path}")


def run_and_render(benchmark, ctx, experiment_id, max_rows=25):
    """Time one experiment and print its rendered report."""
    from repro.experiments import run_experiment

    report = benchmark.pedantic(
        lambda: run_experiment(experiment_id, context=ctx),
        rounds=1,
        iterations=1,
    )
    print()
    print(report.render(max_rows=max_rows))
    _write_bench_manifest(ctx, experiment_id)
    return report
