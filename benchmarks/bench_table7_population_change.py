"""Table 7 — mean AS population of changed vs unchanged organizations.

Paper: 352 changed orgs (of 25,457) with mean users rising from
3,013,751 (AS2Org) to 3,561,258 (Borges); 25,105 unchanged orgs
averaging just 117,805 users; total marginal growth 193M users of 4.21B
(≈5% of the Internet population).  The shape: few orgs change, the
changed ones are far larger than the unchanged, and the marginal growth
is a mid-single-digit percentage of the total population.
"""

from conftest import run_and_render


def test_table7_population_change(benchmark, ctx):
    report = run_and_render(benchmark, ctx, "table7")
    rows = {row["group"]: row for row in report.rows}
    changed, unchanged = rows["Changed"], rows["Unchanged"]

    # Only a small fraction of organizations is reconfigured.
    total_orgs = changed["organizations"] + unchanged["organizations"]
    assert changed["organizations"] / total_orgs < 0.10

    # Changed organizations are much larger than unchanged ones.
    assert changed["mean_users_as2org"] > 3 * unchanged["mean_users_as2org"]
    # And Borges makes them larger still.
    assert changed["mean_users_borges"] > changed["mean_users_as2org"]

    # Total marginal growth ≈5% of the Internet population (paper: 4.6%).
    from repro.analysis import population_change_summary

    summary = population_change_summary(
        ctx.borges, ctx.as2org, ctx.universe.apnic
    )
    assert 2.0 <= summary.marginal_growth_pct_of_internet <= 9.0
