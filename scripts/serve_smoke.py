#!/usr/bin/env python3
"""CI smoke test for the serve subsystem.

Default mode boots the HTTP query server on an ephemeral port over a
small universe, hits every endpoint (including the 400/404 contracts),
performs a hot snapshot swap from a freshly-written release file while
background readers are active, asserts zero failed requests, and shuts
the server down cleanly.  Exits non-zero on the first violated
expectation.

``--chaos corrupt-snapshot`` replays the swap with a fault injector
that corrupts every snapshot file read: the swap must fail closed (old
generation keeps serving, zero 5xx), the input file must be
quarantined, and ``POST /v1/admin/rollback`` must restore the
last-known-good generation.

``--chaos thundering-herd`` fires synchronized waves of concurrent
clients at a deliberately tiny admission gate: every response must be
200/404/429 — never a 5xx — and the rollback path must work under
that load.  The herd also drives the availability SLO: its burn-rate
alert must be *firing* in ``/v1/admin/slo`` right after the waves and
must *clear* once a healthy trickle outlives the fast window.

The default mode additionally proves the trace plumbing end to end: a
client-supplied W3C ``traceparent`` must round-trip into the
``x-borges-trace-id`` response header and be joinable in the access
log.

Run:  PYTHONPATH=src python scripts/serve_smoke.py [--chaos PROFILE]
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from tempfile import TemporaryDirectory

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import UniverseConfig  # noqa: E402
from repro.core import BorgesPipeline  # noqa: E402
from repro.core.release import save_mapping_as2org  # noqa: E402
from repro.obs import (  # noqa: E402
    EventLog,
    MetricsRegistry,
    SLOConfig,
    SLOTracker,
)
from repro.resilience import PROFILES, FaultInjector  # noqa: E402
from repro.serve import (  # noqa: E402
    AdmissionController,
    AdmissionLimits,
    QueryServer,
    QueryService,
)
from repro.serve.store import QUARANTINE_SUFFIX, SnapshotStore  # noqa: E402
from repro.universe import generate_universe  # noqa: E402


def fetch(url: str):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def fetch_traced(url: str, traceparent: str):
    """GET with a ``traceparent`` header; returns (status, body, headers)."""
    request = urllib.request.Request(
        url, headers={"traceparent": traceparent}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read()), response.headers


def post(url: str, payload: dict):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def expect(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}")
    if not condition:
        sys.exit(f"serve smoke failed: {label}")


def _small_world():
    """(universe, mapping) shared by every smoke mode."""
    print("building universe + running pipeline...")
    universe = generate_universe(
        UniverseConfig(seed=5, n_organizations=300, total_users=20_000_000)
    )
    result = BorgesPipeline(universe.whois, universe.pdb, universe.web).run()
    return universe, result.mapping


def chaos_corrupt_snapshot() -> int:
    """Corrupt every snapshot file read; serving must never blink."""
    universe, mapping = _small_world()
    registry = MetricsRegistry()
    injector = FaultInjector(
        PROFILES["corrupt-snapshot"], seed=13, registry=registry
    )
    store = SnapshotStore(registry=registry, injector=injector)
    service = QueryService(store=store, registry=registry, injector=injector)
    store.load_from_mapping(mapping, whois=universe.whois, label="gen1")

    with QueryServer(service) as server:
        base = server.url
        print(f"server on {base} (corrupt-snapshot profile)")
        asns = store.current().index.asns()[:100]
        statuses: list = []
        stop = threading.Event()

        def reader() -> None:
            i = 0
            while not stop.is_set():
                code, _ = fetch(f"{base}/v1/asn/{asns[i % len(asns)]}")
                statuses.append(code)
                i += 1

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()

        print("corrupt swap under live readers:")
        with TemporaryDirectory() as tmp:
            release_path = Path(tmp) / "release.jsonl"
            save_mapping_as2org(mapping, universe.whois, release_path)
            swapped = store.try_swap(
                lambda: store.load_from_release_file(release_path),
                label="chaos release",
            )
            expect(swapped is None, "corrupt swap failed closed")
            quarantined = release_path.with_name(
                release_path.name + QUARANTINE_SUFFIX
            )
            expect(
                not release_path.exists() and quarantined.exists(),
                "corrupt input quarantined",
            )
        expect(store.current().generation == 1, "old generation still active")
        code, body = fetch(f"{base}/healthz")
        expect(
            code == 200 and body["status"] == "degraded",
            "healthz reports degraded (stale)",
        )

        # A good in-memory generation (chaos only bites file loads),
        # then roll back to gen1 over the admin endpoint.
        store.load_from_mapping(mapping, whois=universe.whois, label="gen2")
        code, body = post(f"{base}/v1/admin/rollback", {})
        expect(code == 200, "rollback endpoint answered 200")
        expect(body["generation"] == 3, "rollback installed a new generation")
        stop.set()
        for t in threads:
            t.join(timeout=10.0)
        expect(
            all(status in (200, 404) for status in statuses),
            f"zero 5xx across {len(statuses)} chaos-mode requests",
        )
        code, body = fetch(f"{base}/v1/asn/{asns[0]}")
        expect(
            code == 200 and body["generation"] == 3,
            "post-rollback answers from the restored generation",
        )
    print("corrupt-snapshot chaos smoke passed")
    return 0


def chaos_thundering_herd() -> int:
    """Synchronized client waves against a tiny gate: shed, never 5xx."""
    universe, mapping = _small_world()
    profile = PROFILES["thundering-herd"]
    registry = MetricsRegistry()
    injector = FaultInjector(profile, seed=17, registry=registry)
    admission = AdmissionController(
        AdmissionLimits(max_inflight=1, max_queue=1, default_deadline=2.0),
        registry=registry,
    )
    store = SnapshotStore(registry=registry)
    # Tiny SLO windows so the burn-rate alert can fire and clear inside
    # a CI-sized smoke run instead of 5m/1h.
    slo = SLOTracker(
        SLOConfig(fast_window_seconds=2.0, slow_window_seconds=10.0),
        registry=registry,
    )
    service = QueryService(
        store=store,
        registry=registry,
        admission=admission,
        injector=injector,
        slo=slo,
    )
    store.load_from_mapping(mapping, whois=universe.whois, label="gen1")

    with QueryServer(service) as server:
        base = server.url
        workers = profile.herd_multiplier * admission.limits.max_inflight
        waves = 25
        print(
            f"server on {base} (thundering-herd: {workers} clients x "
            f"{waves} waves against a 1-in-flight/1-queued gate)"
        )
        asns = store.current().index.asns()[:100]
        statuses: list = []
        lock = threading.Lock()
        barrier = threading.Barrier(workers)

        def client(index: int) -> None:
            local = []
            for wave in range(waves):
                try:
                    barrier.wait(timeout=30.0)
                except threading.BrokenBarrierError:
                    break
                code, _ = fetch(
                    f"{base}/v1/asn/{asns[(index + wave) % len(asns)]}"
                )
                local.append(code)
            with lock:
                statuses.extend(local)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)

        counts = {code: statuses.count(code) for code in sorted(set(statuses))}
        print(f"  response codes: {counts}")
        expect(len(statuses) == workers * waves, "every client finished")
        expect(
            all(status < 500 for status in statuses),
            "zero 5xx under thundering herd",
        )
        expect(counts.get(429, 0) > 0, "the gate shed under the herd")

        code, body = fetch(f"{base}/v1/admin/slo")
        expect(code == 200, "slo admin endpoint answered")
        expect(
            body["availability"]["alert"]["state"] == "firing",
            "availability burn-rate alert firing after the herd",
        )

        # A healthy trickle until the fast window rolls past the herd's
        # errors: the alert must clear on its own, bounded by a timeout.
        cleared = False
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            for i in range(5):
                fetch(f"{base}/v1/asn/{asns[i]}")
            code, body = fetch(f"{base}/v1/admin/slo")
            if body["availability"]["alert"]["state"] == "clear":
                cleared = True
                break
            time.sleep(0.25)
        expect(cleared, "availability alert cleared after recovery")

        code, body = fetch(f"{base}/healthz")
        expect(code == 200 and body["status"] == "ok", "healthz ok after herd")

        # Rollback still works while the gate is this tight (admin calls
        # are never admission-gated).
        store.load_from_mapping(mapping, whois=universe.whois, label="gen2")
        code, body = post(f"{base}/v1/admin/rollback", {})
        expect(code == 200 and body["generation"] == 3, "rollback under load")
    print("thundering-herd chaos smoke passed")
    return 0


def main() -> int:
    universe, mapping = _small_world()

    service = QueryService(event_log=EventLog())
    service.store.load_from_mapping(
        mapping, whois=universe.whois, pdb=universe.pdb
    )
    with QueryServer(service) as server:
        base = server.url
        print(f"server on {base}")
        index = service.store.current().index
        asn = index.asns()[0]
        multi = next(o for o in (index.org_of(a) for a in index.asns())
                     if o.size > 1)
        a, b = multi.members[:2]

        print("endpoint contracts:")
        code, body = fetch(f"{base}/healthz")
        expect(code == 200 and body["status"] == "ok", "healthz ok")
        code, body = fetch(f"{base}/v1/asn/{asn}")
        expect(code == 200 and body["asn"] == asn, "asn lookup")
        expect(fetch(f"{base}/v1/asn/999999999")[0] == 404, "asn 404")
        expect(fetch(f"{base}/v1/asn/banana")[0] == 400, "asn 400")
        code, body = fetch(f"{base}/v1/org/{multi.org_id}")
        expect(code == 200 and body["size"] == multi.size, "org lookup")
        expect(fetch(f"{base}/v1/org/BORGES-NOPE")[0] == 404, "org 404")
        code, body = fetch(f"{base}/v1/siblings?a={a}&b={b}")
        expect(code == 200 and body["siblings"] is True, "siblings verdict")
        expect(fetch(f"{base}/v1/siblings")[0] == 400, "siblings 400")
        token = multi.name.split()[0].lower()
        code, body = fetch(f"{base}/v1/search?q={token}")
        expect(code == 200 and isinstance(body["results"], list), "search")
        expect(fetch(f"{base}/v1/search")[0] == 400, "search 400")

        print("trace propagation:")
        trace_id = "4bf92f3577b34da6a3ce929d0e0e4736"
        code, _, headers = fetch_traced(
            f"{base}/v1/asn/{asn}", f"00-{trace_id}-00f067aa0ba902b7-01"
        )
        expect(
            code == 200 and headers.get("x-borges-trace-id") == trace_id,
            "traceparent round-trips into x-borges-trace-id",
        )
        # The access event is emitted after the response bytes are on the
        # wire, so give the handler thread a moment to finish its finally.
        access: list = []
        deadline = time.monotonic() + 5.0
        while not access and time.monotonic() < deadline:
            access = [
                event
                for event in service.event_log.events("http.access")
                if event.get("trace_id") == trace_id
            ]
            if not access:
                time.sleep(0.01)
        expect(
            len(access) == 1
            and access[0]["endpoint"] == "asn"
            and access[0]["status"] == 200,
            "trace id joins the access log",
        )

        print("hot swap under live readers:")
        errors = []
        stop = threading.Event()

        def reader() -> None:
            i = 0
            asns = index.asns()[:100]
            while not stop.is_set():
                code, _ = fetch(f"{base}/v1/asn/{asns[i % len(asns)]}")
                if code != 200:
                    errors.append(code)
                    return
                i += 1

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        with TemporaryDirectory() as tmp:
            release_path = Path(tmp) / "release.jsonl"
            save_mapping_as2org(mapping, universe.whois, release_path)
            service.store.load_from_release_file(release_path)
        stop.set()
        for t in threads:
            t.join(timeout=10.0)
        expect(errors == [], "zero failed requests across the swap")
        code, body = fetch(f"{base}/healthz")
        expect(body["generation"] == 2, "generation bumped to 2")
        code, body = fetch(f"{base}/v1/siblings?a={a}&b={b}")
        expect(
            code == 200 and body["siblings"] is True and body["generation"] == 2,
            "post-swap answers from the new generation",
        )
        drained = service.store.drain(timeout=5.0)
        expect(drained >= 0, f"retired generations drained ({drained})")

        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as r:
            text = r.read().decode()
        expect("serve_requests_total" in text, "metrics exposition")
        expect("serve_snapshot_swaps_total 2" in text, "swap counter at 2")

    print("graceful shutdown ok")
    stats = service.stats()
    print(f"request totals: {stats['requests']}")
    print("serve smoke passed")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--chaos",
        choices=("corrupt-snapshot", "thundering-herd"),
        default=None,
        help="run a chaos-profile smoke instead of the default contract sweep",
    )
    args = parser.parse_args()
    if args.chaos == "corrupt-snapshot":
        sys.exit(chaos_corrupt_snapshot())
    elif args.chaos == "thundering-herd":
        sys.exit(chaos_thundering_herd())
    sys.exit(main())
