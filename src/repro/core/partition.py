"""Dataset partitioning for sharded pipeline runs.

Sharding the stage DAG is only sound if no feature can ever emit a
cluster that spans two shards.  :func:`partition_universe` therefore
computes a *conservative closure* over every evidence channel the
pipeline (§3–§4) can use to link two ASNs:

1. **WHOIS org membership** — ASNs delegated to the same WHOIS org
   (the ``oid_w`` feature);
2. **PeeringDB org membership** — nets under one PDB org (``oid_p``);
3. **shared raw website URL** — two nets listing the same URL always
   resolve to the same final URL (the scrape stage);
4. **redirect reachability** — every host on a net's redirect chain,
   walked statically through the simulated web regardless of liveness,
   so any two ASNs that *could* share a final URL co-shard (``rr``);
5. **shared favicon digest** — hosts on those chains serving identical
   favicon bytes, the raw material of the §4.3.3 favicon decision tree
   (including framework-default and platform icons, whose LLM verdicts
   depend on the full group's URL set);
6. **numbers in free text** — any syntactic ASN appearing in a net's
   notes/aka, the superset of everything the §4.2 extraction (and its
   injected error modes) can promote to a sibling.  Numbers *outside*
   the universe matter too: the merge stage unions raw extraction
   clusters before :class:`~repro.core.mapping.OrgMapping` drops
   non-universe members, so a bogus number shared by two nets' notes
   transitively bridges their clusters — every pair of nets naming the
   same number must co-shard, whether or not that number is an ASN.

Each channel can only *over*-connect relative to the real features
(blocklists, dead hosts, and output filters all shrink the closure), so
over-connection costs shard balance, never correctness: the union of
per-shard feature clusters is exactly the single-shot cluster set, and
the reduced mapping is byte-identical (asserted by the property tests
and the CI ``scale-smoke`` job).

Components are packed into N shards greedy-largest-first, which is
deterministic and keeps shards balanced to within the largest component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from ..llm.extraction_engine import find_all_numbers
from ..logutil import get_logger
from ..types import ASN
from ..web.url import parse_url
from .merge import UnionFind

_LOG = get_logger("core.partition")


@dataclass(frozen=True)
class Shard:
    """One shard: a closed set of ASNs no feature edge leaves."""

    index: int
    asns: Tuple[ASN, ...]
    #: How many connected components were packed into this shard.
    components: int

    def __len__(self) -> int:
        return len(self.asns)


@dataclass(frozen=True)
class PartitionPlan:
    """The result of partitioning one dataset into balanced shards."""

    shards: Tuple[Shard, ...]
    requested_shards: int
    n_components: int
    largest_component: int

    @property
    def n_asns(self) -> int:
        return sum(len(s) for s in self.shards)

    def summary(self) -> Dict[str, int]:
        sizes = [len(s) for s in self.shards]
        return {
            "shards": len(self.shards),
            "requested_shards": self.requested_shards,
            "asns": self.n_asns,
            "components": self.n_components,
            "largest_component": self.largest_component,
            "largest_shard": max(sizes) if sizes else 0,
            "smallest_shard": min(sizes) if sizes else 0,
        }


def _host_of(url: str) -> str:
    try:
        return parse_url(url).host
    except Exception:  # noqa: BLE001 - malformed URLs link nothing
        return ""


def _chain_hosts(web, host: str) -> List[str]:
    """Every host reachable from *host* by following redirects.

    Walked statically (dead sites included): a conservative superset of
    what the scraper can observe under any liveness/chaos condition.
    """
    hosts: List[str] = []
    seen: Set[str] = set()
    while host and host not in seen:
        seen.add(host)
        hosts.append(host)
        site = web.site_for("http://" + host) if web is not None else None
        if site is None or not site.redirect_target:
            break
        host = _host_of(site.redirect_target)
    return hosts


def connected_components(whois, pdb, web) -> List[List[ASN]]:
    """The closure's connected components, largest first (ties: min ASN)."""
    forest = UnionFind()
    for asn in whois.asns():
        forest.add(int(asn))

    # 1. WHOIS org membership.
    for members in whois.members().values():
        first = int(members[0])
        for other in members[1:]:
            forest.union(first, int(other))

    universe: Set[int] = {int(a) for a in whois.asns()}
    if pdb is not None:
        for asn in pdb.nets:
            forest.add(int(asn))
            universe.add(int(asn))

        # 2. PDB org membership.
        for members in pdb.org_members().values():
            first = int(members[0])
            for other in members[1:]:
                forest.union(first, int(other))

        by_raw_url: Dict[str, int] = {}
        by_host: Dict[str, int] = {}
        by_favicon: Dict[str, int] = {}
        by_number: Dict[int, int] = {}
        for net in pdb.networks():
            asn = int(net.asn)
            # 3. Shared raw website URL.
            if net.has_website:
                raw = net.website.strip()
                anchor = by_raw_url.setdefault(raw, asn)
                if anchor != asn:
                    forest.union(anchor, asn)
                # 4./5. Redirect-chain hosts and their favicon digests.
                for host in _chain_hosts(web, _host_of(raw)):
                    anchor = by_host.setdefault(host, asn)
                    if anchor != asn:
                        forest.union(anchor, asn)
                    site = (
                        web.site_for("http://" + host)
                        if web is not None
                        else None
                    )
                    if site is not None and site.favicon:
                        digest = site.favicon_id
                        anchor = by_favicon.setdefault(digest, asn)
                        if anchor != asn:
                            forest.union(anchor, asn)
            # 6. Numbers named in free text.  Out-of-universe numbers
            # still bridge: merge unions raw extraction clusters before
            # OrgMapping drops non-universe members, so two nets naming
            # the same bogus number end up transitively merged.
            if net.freeform_text:
                for number in find_all_numbers(net.freeform_text):
                    if number == asn:
                        continue
                    if number in universe:
                        forest.union(asn, number)
                    anchor = by_number.setdefault(number, asn)
                    if anchor != asn:
                        forest.union(anchor, asn)

    by_root: Dict[object, List[int]] = {}
    for asn in universe:
        by_root.setdefault(forest.find(asn), []).append(asn)
    components = [sorted(members) for members in by_root.values()]
    components.sort(key=lambda c: (-len(c), c[0]))
    return components


def partition_universe(
    whois, pdb, web, n_shards: int
) -> PartitionPlan:
    """Split the dataset into at most *n_shards* balanced, closed shards.

    Greedy largest-first bin packing over the closure's components:
    deterministic (components are ordered by size then min ASN; ties
    between bins go to the lowest index), balanced to within the largest
    component.  Fewer non-empty shards than requested are returned when
    there are fewer components than bins.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    components = connected_components(whois, pdb, web)
    bins: List[List[List[int]]] = [[] for _ in range(n_shards)]
    loads = [0] * n_shards
    for component in components:
        target = min(range(n_shards), key=lambda i: (loads[i], i))
        bins[target].append(component)
        loads[target] += len(component)
    shards: List[Shard] = []
    for groups in bins:
        if not groups:
            continue
        members = sorted(asn for group in groups for asn in group)
        shards.append(
            Shard(
                index=len(shards),
                asns=tuple(members),
                components=len(groups),
            )
        )
    plan = PartitionPlan(
        shards=tuple(shards),
        requested_shards=n_shards,
        n_components=len(components),
        largest_component=len(components[0]) if components else 0,
    )
    _LOG.debug("partitioned: %s", plan.summary())
    return plan


def validate_partition(plan: PartitionPlan, asns: Iterable[ASN]) -> None:
    """Assert *plan* covers *asns* exactly once (defense in depth)."""
    seen: Set[int] = set()
    for shard in plan.shards:
        for asn in shard.asns:
            if asn in seen:
                raise ValueError(f"AS{asn} appears in two shards")
            seen.add(asn)
    missing = {int(a) for a in asns} - seen
    if missing:
        raise ValueError(
            f"{len(missing)} ASNs missing from partition "
            f"(e.g. {sorted(missing)[:5]})"
        )
