"""Overload and integrity benches for the serve tier.

The acceptance bars the admission gate and snapshot guardrails are held
to, all on the default synthetic universe:

* at 4× saturation (16 workers against 4 slots) the service answers
  **zero 5xx** — surplus load is shed as 429, not crashed;
* rejections are instant: a shed request is answered far inside its
  deadline budget (shedding late is just a slower failure);
* the p99 latency of *admitted* requests stays within 5× the unloaded
  p99 — queueing is bounded, so the requests the gate accepts still get
  a usable answer;
* loading a corrupt snapshot mid-bench never interrupts serving: the
  old generation keeps answering, marked stale;
* :meth:`~repro.serve.store.SnapshotStore.rollback` restores the
  last-known-good generation's content.

Requests run against a ``slow-reader`` chaos profile (each request
holds its admission slot for ~10 ms); that makes service time dominate
thread-scheduling noise, so the queueing arithmetic — admitted p99 ≈
(1 + queue/inflight) × service time — is what the bench measures.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import pytest

from repro.config import UniverseConfig
from repro.core import BorgesPipeline
from repro.core.release import save_mapping_as2org
from repro.obs import MetricsRegistry
from repro.resilience import PROFILES, FaultInjector, corrupt_snapshot_text
from repro.serve import (
    AdmissionController,
    AdmissionLimits,
    LoadGenerator,
    QueryService,
)
from repro.serve.store import QUARANTINE_SUFFIX, SnapshotStore
from repro.universe import generate_universe

#: How long each request holds its slot under the slow-reader profile.
SERVICE_SECONDS = 0.010

LIMITS = AdmissionLimits(
    max_inflight=4, max_queue=2, default_deadline=2.0
)

#: 4× the gate's concurrency — the saturation level under test.
SATURATION_WORKERS = 4 * LIMITS.max_inflight

#: Admitted p99 must stay within this factor of the unloaded p99.
P99_FACTOR_BOUND = 5.0

BASELINE_REQUESTS = 200
OVERLOAD_REQUESTS = 800


@pytest.fixture(scope="module")
def universe():
    return generate_universe(UniverseConfig())


@pytest.fixture(scope="module")
def mapping(universe):
    return BorgesPipeline(universe.whois, universe.pdb, universe.web).run().mapping


def _slow_service(universe, mapping):
    """An admission-gated service whose every request takes ~10 ms."""
    registry = MetricsRegistry()
    profile = dataclasses.replace(
        PROFILES["slow-reader"], slow_read_seconds=SERVICE_SECONDS
    )
    injector = FaultInjector(profile, seed=11, registry=registry)
    store = SnapshotStore(registry=registry)
    service = QueryService(
        store=store,
        registry=registry,
        admission=AdmissionController(LIMITS, registry=registry),
        injector=injector,
    )
    store.load_from_mapping(mapping, whois=universe.whois, label="gen1")
    return service


def test_bench_overload_sheds_never_errors(benchmark, universe, mapping):
    """4× saturation: zero 5xx, bounded admitted tail, instant rejections."""
    service = _slow_service(universe, mapping)
    asns = service.store.current().index.asns()
    generator = LoadGenerator(service, asns, seed=3)

    baseline = generator.run_overload(
        BASELINE_REQUESTS, workers=1, herd_size=0
    )
    assert baseline.classes["429"] == 0, "unloaded run must not shed"

    overload = benchmark.pedantic(
        lambda: generator.run_overload(
            OVERLOAD_REQUESTS,
            workers=SATURATION_WORKERS,
            herd_size=25,
            backoff_seconds=SERVICE_SECONDS,
        ),
        rounds=1,
        iterations=1,
    )
    print(
        f"\noverload: {overload.classes} "
        f"admitted p99 {overload.admitted_p99 * 1e3:.1f} ms "
        f"vs unloaded {baseline.admitted_p99 * 1e3:.1f} ms"
    )
    benchmark.extra_info["classes"] = dict(overload.classes)
    benchmark.extra_info["p99_factor"] = round(
        overload.admitted_p99 / baseline.admitted_p99, 2
    )
    # Zero server errors at 4x saturation: overload degrades to shedding.
    assert overload.classes["5xx"] == 0
    # The gate actually engaged (the run would be meaningless otherwise).
    assert overload.classes["429"] > 0
    # Rejections were all instant 429s, not deadline-expired 503s: with a
    # 2 s budget and a 2-deep queue nothing should ever wait that long.
    assert overload.classes["deadline"] == 0
    # Admitted requests still got timely answers.
    assert overload.admitted_p99 <= P99_FACTOR_BOUND * baseline.admitted_p99


def test_bench_shed_latency_within_deadline(benchmark, universe, mapping):
    """A saturated gate rejects in microseconds, not after the deadline."""
    service = _slow_service(universe, mapping)
    gate = service.admission
    tickets = [gate.admit("asn") for _ in range(LIMITS.max_inflight)]
    release_waiters = threading.Event()
    waiters = []

    def waiter() -> None:
        with gate.admit("asn"):
            release_waiters.wait(timeout=30.0)

    for _ in range(LIMITS.max_queue):
        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        waiters.append(thread)
    deadline = time.monotonic() + 5.0
    while gate.occupancy()["queued"] < LIMITS.max_queue:
        if time.monotonic() > deadline:
            raise AssertionError("queue never filled")
        time.sleep(0.001)

    rejections = []

    def shed_once() -> float:
        t0 = time.perf_counter()
        try:
            with gate.admit("asn"):
                raise AssertionError("saturated gate admitted a request")
        except Exception as exc:  # noqa: BLE001 — expected OverloadedError
            elapsed = time.perf_counter() - t0
            rejections.append((type(exc).__name__, elapsed))
            return elapsed

    try:
        benchmark.pedantic(shed_once, rounds=20, iterations=1)
    finally:
        for ticket in tickets:
            ticket.__exit__(None, None, None)
        release_waiters.set()
        for thread in waiters:
            thread.join(timeout=5.0)
    assert rejections
    for name, elapsed in rejections:
        assert name == "OverloadedError"
        assert elapsed < LIMITS.default_deadline


def test_bench_corrupt_swap_mid_load_then_rollback(
    benchmark, universe, mapping, tmp_path
):
    """A corrupt snapshot mid-bench never interrupts serving; rollback works."""
    service = _slow_service(universe, mapping)
    store = service.store
    asns = service.store.current().index.asns()[:256]
    gen1_stats = store.current().index.stats()

    good = tmp_path / "good_release.jsonl"
    save_mapping_as2org(mapping, universe.whois, good)
    corrupt = tmp_path / "corrupt_release.jsonl"
    corrupt.write_text(
        corrupt_snapshot_text(good.read_text(encoding="utf-8"), seed=5),
        encoding="utf-8",
    )

    errors: list = []
    stop = threading.Event()

    def reader() -> None:
        i = 0
        while not stop.is_set():
            try:
                service.lookup_asn(asns[i % len(asns)])
            except Exception as exc:  # noqa: BLE001 — bench counts failures
                errors.append(exc)
                return
            i += 1

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        # A second good generation, so there is history to roll back to.
        store.load_from_release_file(good)
        generation_before = store.current().generation

        # The corrupt load mid-traffic: must fail closed, keep serving.
        swapped = benchmark.pedantic(
            lambda: store.try_swap(
                lambda: store.load_from_release_file(corrupt),
                label="corrupt mid-bench",
            ),
            rounds=1,
            iterations=1,
        )
        assert swapped is None
        assert store.current().generation == generation_before
        assert store.stale
        # The bad file was quarantined, so a supervisor retry loop cannot
        # re-feed the same bytes.
        assert not corrupt.exists()
        assert corrupt.with_name(corrupt.name + QUARANTINE_SUFFIX).exists()

        # Rollback restores the last-known-good content (generation 1).
        restored = service.rollback()
        assert restored["generation"] > generation_before
        assert store.current().index.stats() == gen1_stats
        assert not store.stale
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
    assert errors == []
