"""Streaming universe generation: plan → lazy org chunks → assembly.

The legacy generator materialized every org, registry record and web
page in memory before returning.  This module splits generation into
three phases so a million-ASN universe can be produced incrementally:

1. **Plan** (:func:`build_plan`) — cheap per-org seeds: category,
   conglomerate shape, brand count and the exact ASN blocks, plus the
   plan-level facts that need a global view (the transit pool and the
   tier-1/tier-2 backbone membership).  The plan is small: no names, no
   registry records, no web pages.
2. **Materialize** (:func:`materialize_chunk` / :func:`stream_chunks`) —
   org-complete chunks carrying every exported view of their orgs:
   ground-truth entities, WHOIS orgs + delegations, PeeringDB orgs +
   nets, web sites, annotations, raw population draws and stub topology
   edges.
3. **Assemble** (:func:`assemble_universe`) — fold chunks into the full
   :class:`Universe`: build datasets, normalize populations to
   ``config.total_users``, and emit the tier-1/tier-2 backbone edges.

**Determinism contract.**  Every random draw hangs off a *named RNG
substream* keyed only by ``(purpose, config.seed, org_index)`` —
``org-shape`` (plan), ``org-body`` (entity/registry draws), ``org-web``
(site liveness + redirect chains), ``names`` (via
:class:`~repro.universe.names.OrgNamer`), and per-org
:class:`~repro.universe.notes_synth.NotesSynthesizer` streams — plus the
chunk-independent ``canonical`` and ``topology`` streams.  Because no
stream is shared across orgs, any chunk can be regenerated in isolation,
the universe is invariant to ``chunk_size``, and streaming produces a
byte-identical universe to collect-all materialization.  Identifiers
that were previously global counters are now derived from the org index
(WHOIS handles ``WO-<org_index>-<ordinal>-<RIR>``, PeeringDB org ids
``org_index * 32 + ordinal + 1``, brand tokens suffixed with the org
index), so no cross-org coordination is needed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..apnic import ApnicDataset, PopulationRecord
from ..asrank import ASRank, ASTopology, compute_rank
from ..config import UniverseConfig
from ..errors import DataError
from ..logutil import get_logger
from ..peeringdb import Network, Organization, PDBSnapshot
from ..types import ASN
from ..web.simweb import (
    FRAMEWORK_FAVICON_BRANDS,
    SimulatedWeb,
    Site,
    is_framework_favicon_brand,
    make_favicon,
)
from ..whois import ASNDelegation, WhoisDataset, WhoisOrg
from .canonical import CanonicalPlan, build_canonical_plan
from .entities import Brand, GroundTruth, Org, OrgCategory
from .events import EventKind, MnAEvent, Timeline
from .names import PLATFORM_HOSTS, OrgNamer
from .notes_synth import NotesSynthesizer
from .web_synth import plant_org_redirects, plant_org_sites

_LOG = get_logger("universe.stream")

#: Synthetic ASNs are allocated upward from here; canonical scenario ASNs
#: all sit below (see :mod:`repro.universe.canonical`).
SYNTHETIC_ASN_BASE = 100_001

#: Orgs per materialized chunk when the caller does not choose.
DEFAULT_CHUNK_ORGS = 1024

#: Government-style many-ASN registrants (the DoD pattern).
N_GOVERNMENT_ORGS = 2

#: PeeringDB org ids are ``org_index * stride + local_ordinal + 1``; the
#: stride bounds how many distinct PDB org keys one org may mint (worst
#: case today: 26 brands, each its own key, plus a consolidated key).
PDB_ORG_ID_STRIDE = 32

_RIR_BY_REGION = {
    "northam": "arin",
    "latam": "lacnic",
    "caribbean": "lacnic",
    "europe": "ripencc",
    "apac": "apnic",
    "africa": "afrinic",
    "mideast": "ripencc",
}

_CATEGORY_WEIGHTS = (
    (OrgCategory.ACCESS, 0.40),
    (OrgCategory.ENTERPRISE, 0.35),
    (OrgCategory.TRANSIT, 0.15),
    (OrgCategory.CONTENT, 0.10),
)

#: Brand ASN-count distribution (heavy-tailed; mirrors WHOIS org sizes,
#: whose mean in the paper's snapshot is 1.23 ASNs per organization).
_BRAND_SIZE_TABLE = (
    (1, 0.890), (2, 0.070), (3, 0.020), (4, 0.008), (5, 0.005),
    (8, 0.003), (12, 0.002), (20, 0.001), (40, 0.0005),
)

#: Conglomerate-probability multipliers per category: carriers grow by
#: acquisition far more often than enterprises (the Fig. 1 dynamic).
_CONGLOMERATE_MULTIPLIER = {
    OrgCategory.TRANSIT: 3.0,
    OrgCategory.CONTENT: 2.0,
    OrgCategory.ACCESS: 1.5,
    OrgCategory.ENTERPRISE: 0.5,
}

#: Anonymous hosting-template favicon families beyond the named ones;
#: each groups a few unrelated small sites (Table 5's TN population).
_N_TEMPLATE_FAMILIES = 36


@dataclass
class Annotations:
    """Ground truth for the validation tables (Tables 4–5)."""

    #: PDB net ASN → sibling ASNs truly embedded in its notes+aka text.
    notes_truth: Dict[ASN, Tuple[ASN, ...]] = field(default_factory=dict)
    #: favicon brand token → is it a real company's logo (vs framework)?
    favicon_company: Dict[str, bool] = field(default_factory=dict)


@dataclass
class Universe:
    """One complete synthetic Internet with all exported views."""

    config: UniverseConfig
    ground_truth: GroundTruth
    timeline: Timeline
    whois: WhoisDataset
    pdb: PDBSnapshot
    web: SimulatedWeb
    apnic: ApnicDataset
    topology: ASTopology
    annotations: Annotations
    _rank: Optional[ASRank] = None

    @property
    def asrank(self) -> ASRank:
        """The AS-Rank table (computed lazily, cached)."""
        if self._rank is None:
            self._rank = compute_rank(self.topology)
        return self._rank

    def summary(self) -> Dict[str, float]:
        stats: Dict[str, float] = {}
        stats.update({f"gt_{k}": v for k, v in self.ground_truth.stats().items()})
        stats.update({f"whois_{k}": v for k, v in self.whois.stats().items()})
        stats.update(
            {f"pdb_{k}": float(v) for k, v in self.pdb.stats().items()}
        )
        stats.update({f"web_{k}": float(v) for k, v in self.web.stats().items()})
        stats["apnic_total_users"] = float(self.apnic.total_users)
        stats["topology_asns"] = float(len(self.topology))
        return stats


def _is_carrier(org: Org) -> bool:
    """A serial-acquirer transit carrier (many branded subsidiaries)."""
    return (
        org.category is OrgCategory.TRANSIT
        and org.is_conglomerate
        and len(org.brands) >= 5
    )


# -- plan phase -------------------------------------------------------------


@dataclass(frozen=True)
class OrgSeed:
    """The cheap shape of one planned org: everything but the content."""

    #: Global org index; canonical orgs occupy ``[0, n_canonical)``.
    index: int
    org_id: str
    kind: str  # "random" | "government"
    category: OrgCategory
    is_conglomerate: bool
    carrier_scale: bool
    #: Exact ASN block per brand, in brand order.
    brand_asns: Tuple[Tuple[ASN, ...], ...]

    @property
    def n_brands(self) -> int:
        return len(self.brand_asns)

    @property
    def size(self) -> int:
        return sum(len(block) for block in self.brand_asns)

    @property
    def asns(self) -> List[ASN]:
        result: List[ASN] = []
        for block in self.brand_asns:
            result.extend(block)
        return sorted(result)

    @property
    def flagship_primary_asn(self) -> ASN:
        return min(self.brand_asns[0])

    @property
    def is_carrier(self) -> bool:
        return (
            self.category is OrgCategory.TRANSIT
            and self.is_conglomerate
            and self.n_brands >= 5
        )


@dataclass
class UniversePlan:
    """Seeds plus the plan-level facts that need a global view."""

    config: UniverseConfig
    canonical: CanonicalPlan
    seeds: Tuple[OrgSeed, ...]
    #: Primary ASN of every transit brand (upstream-notes candidates).
    transit_pool: Tuple[ASN, ...]
    tier1: Tuple[ASN, ...]
    tier2: Tuple[ASN, ...]
    chunk_size: int

    @property
    def n_canonical(self) -> int:
        return len(self.canonical.orgs)

    @property
    def n_orgs(self) -> int:
        return self.n_canonical + len(self.seeds)

    @property
    def n_asns(self) -> int:
        return len(self.canonical.all_asns()) + sum(s.size for s in self.seeds)

    @property
    def n_chunks(self) -> int:
        """Chunk 0 is the canonical bundle; seeds fill the rest."""
        return 1 + -(-len(self.seeds) // self.chunk_size) if self.seeds else 1

    def seed_slice(self, chunk_index: int) -> Sequence[OrgSeed]:
        if chunk_index <= 0:
            return ()
        lo = (chunk_index - 1) * self.chunk_size
        return self.seeds[lo: lo + self.chunk_size]


def _draw_category(rng: random.Random) -> OrgCategory:
    roll = rng.random()
    acc = 0.0
    for category, weight in _CATEGORY_WEIGHTS:
        acc += weight
        if roll < acc:
            return category
    return OrgCategory.ENTERPRISE


def _draw_brand_size(rng: random.Random, config: UniverseConfig) -> int:
    roll = rng.random()
    acc = 0.0
    for size, weight in _BRAND_SIZE_TABLE:
        acc += weight
        if roll < acc:
            return size
    return rng.randint(40, config.max_org_asns)


def _geometric(rng: random.Random, mean: float) -> int:
    """Geometric draw with the given mean (0 when mean is 0)."""
    if mean <= 0:
        return 0
    p = 1.0 / (1.0 + mean)
    count = 0
    while rng.random() > p and count < 60:
        count += 1
    return count


def build_plan(
    config: Optional[UniverseConfig] = None,
    chunk_size: Optional[int] = None,
) -> UniversePlan:
    """Draw every org's shape and allocate its exact ASN blocks.

    ASN blocks are allocated sequentially from :data:`SYNTHETIC_ASN_BASE`
    (skipping the canonical scenarios' reserved ASNs), so a seed's blocks
    depend only on the sizes of the seeds before it — all drawn from
    per-org ``org-shape`` substreams — never on any materialized content.
    """
    cfg = (config or UniverseConfig()).validate()
    canonical = build_canonical_plan()
    reserved = frozenset(canonical.all_asns())
    n_canonical = len(canonical.orgs)
    cursor = SYNTHETIC_ASN_BASE

    def allocate(count: int) -> Tuple[ASN, ...]:
        nonlocal cursor
        block: List[ASN] = []
        while len(block) < count:
            if cursor not in reserved:
                block.append(cursor)
            cursor += 1
        return tuple(block)

    seeds: List[OrgSeed] = []
    for i in range(cfg.n_organizations):
        shape = random.Random(repr(("org-shape", cfg.seed, i)))
        category = _draw_category(shape)
        conglomerate_p = min(
            0.5,
            cfg.conglomerate_fraction * _CONGLOMERATE_MULTIPLIER[category],
        )
        is_conglomerate = shape.random() < conglomerate_p
        carrier_scale = False
        n_brands = 1
        if is_conglomerate:
            carrier_scale = (
                category is OrgCategory.TRANSIT and shape.random() < 0.30
            )
            if carrier_scale:
                # Large carriers built by serial acquisition (Lumen, GTT...).
                n_brands = shape.randint(5, 12)
            else:
                mean_extra = max(0.0, cfg.mean_subsidiaries - 1.0)
                n_brands = min(2 + _geometric(shape, mean_extra), 26)
        brand_asns = tuple(
            allocate(_draw_brand_size(shape, cfg)) for _ in range(n_brands)
        )
        seeds.append(
            OrgSeed(
                index=n_canonical + i,
                org_id=f"org-{i:05d}",
                kind="random",
                category=category,
                is_conglomerate=is_conglomerate,
                carrier_scale=carrier_scale,
                brand_asns=brand_asns,
            )
        )
    # A couple of government-style registrants: one WHOIS org holding
    # very many ASNs (the DoD pattern that anchors AS2Org's θ).
    for g in range(N_GOVERNMENT_ORGS):
        size = max(2, cfg.max_org_asns - g * 30)
        seeds.append(
            OrgSeed(
                index=n_canonical + cfg.n_organizations + g,
                org_id=f"gov-{g}",
                kind="government",
                category=OrgCategory.ENTERPRISE,
                is_conglomerate=False,
                carrier_scale=False,
                brand_asns=(allocate(size),),
            )
        )
    transit_pool, tier1, tier2 = _plan_backbone(canonical, seeds)
    return UniversePlan(
        config=cfg,
        canonical=canonical,
        seeds=tuple(seeds),
        transit_pool=transit_pool,
        tier1=tier1,
        tier2=tier2,
        chunk_size=max(1, int(chunk_size or DEFAULT_CHUNK_ORGS)),
    )


def _plan_backbone(
    canonical: CanonicalPlan, seeds: Sequence[OrgSeed]
) -> Tuple[Tuple[ASN, ...], Tuple[ASN, ...], Tuple[ASN, ...]]:
    """Transit pool + tier-1/tier-2 membership, from shapes alone.

    Tier 1 is the carrier clique: the conglomerates built by serial
    acquisition sit at the top of AS-Rank in the real Internet (Lumen,
    GTT, Zayo...), ahead of large single-entity registrants.
    """
    # (org_id, carrier, conglomerate, size, flagship_primary, all_asns)
    entries: List[Tuple[str, bool, bool, int, ASN, List[ASN]]] = []
    for org in canonical.orgs:
        if org.category is not OrgCategory.TRANSIT:
            continue
        entries.append(
            (
                org.org_id,
                _is_carrier(org),
                org.is_conglomerate,
                org.size,
                org.brands[0].primary_asn,
                list(org.asns),
            )
        )
    for seed in seeds:
        if seed.category is not OrgCategory.TRANSIT:
            continue
        entries.append(
            (
                seed.org_id,
                seed.is_carrier,
                seed.is_conglomerate,
                seed.size,
                seed.flagship_primary_asn,
                seed.asns,
            )
        )
    # The upstream-notes pool holds only *synthetic* transit primaries.
    # Canonical scenario clusters are test anchors with exact expected
    # memberships (Fig. 9 counts, the Lumen split); if drawn notes could
    # name canonical ASNs, an injected extract_upstream error — keyed by
    # the reporting ASN, so it fires deterministically — would fuse a
    # narrated cluster with an unrelated org on some seeds.  Canonical
    # upstream narratives are planted explicitly (Maxihost, Appendix B).
    transit_pool: List[ASN] = []
    for seed in seeds:
        if seed.category is OrgCategory.TRANSIT:
            transit_pool.extend(min(block) for block in seed.brand_asns)
    entries.sort(key=lambda e: e[0])
    entries.sort(key=lambda e: (-int(e[1]), -int(e[2]), -e[3]))
    tier1: List[ASN] = []
    tier2: List[ASN] = []
    for i, entry in enumerate(entries):
        if i < 10:
            # One clique member per organization: the flagship's primary
            # ASN (real tier-1 cliques are a dozen comparable giants, not
            # every subsidiary of every carrier).
            tier1.append(entry[4])
            tier2.extend(a for a in entry[5] if a != entry[4])
        else:
            tier2.extend(entry[5])
    tier1 = sorted(set(tier1))
    tier2 = sorted(set(tier2) - set(tier1))
    if not tier1:
        lowest = canonical.all_asns()
        universe_min = lowest[0] if lowest else SYNTHETIC_ASN_BASE
        for seed in seeds:
            if seed.brand_asns:
                universe_min = min(universe_min, seed.flagship_primary_asn)
        tier1 = [universe_min]
    return tuple(sorted(transit_pool)), tuple(tier1), tuple(tier2)


# -- materialization phase --------------------------------------------------


@dataclass
class UniverseChunk:
    """Every exported view of one org-complete slice of the universe."""

    index: int
    orgs: List[Org] = field(default_factory=list)
    events: List[MnAEvent] = field(default_factory=list)
    whois_orgs: List[WhoisOrg] = field(default_factory=list)
    delegations: List[ASNDelegation] = field(default_factory=list)
    pdb_orgs: List[Organization] = field(default_factory=list)
    nets: List[Network] = field(default_factory=list)
    sites: List[Site] = field(default_factory=list)
    notes_truth: Dict[ASN, Tuple[ASN, ...]] = field(default_factory=dict)
    favicon_company: Dict[str, bool] = field(default_factory=dict)
    #: Un-normalized (asn, country, weight) population draws; assembly
    #: scales them so the universe totals ``config.total_users``.
    raw_populations: List[Tuple[ASN, str, float]] = field(default_factory=list)
    #: (provider, customer) edges for this chunk's stub ASNs.
    stub_edges: List[Tuple[ASN, ASN]] = field(default_factory=list)

    @property
    def n_asns(self) -> int:
        return len(self.delegations)


def materialize_chunk(plan: UniversePlan, index: int) -> UniverseChunk:
    """Materialize one chunk in isolation (chunk 0 = canonical bundle)."""
    if index < 0 or index >= plan.n_chunks:
        raise DataError(
            f"chunk {index} out of range (plan has {plan.n_chunks})"
        )
    if index == 0:
        return _materialize_canonical(plan)
    chunk = UniverseChunk(index=index)
    transit_set = set(plan.tier1) | set(plan.tier2)
    providers_pool = plan.tier2 or plan.tier1
    for seed in plan.seed_slice(index):
        _materialize_org(plan, seed, transit_set, providers_pool, chunk)
    return chunk


def stream_chunks(plan: UniversePlan) -> Iterator[UniverseChunk]:
    """Lazily yield every chunk of the plan, in order."""
    for index in range(plan.n_chunks):
        yield materialize_chunk(plan, index)


def _materialize_org(
    plan: UniversePlan,
    seed: OrgSeed,
    transit_set: Set[ASN],
    providers_pool: Sequence[ASN],
    chunk: UniverseChunk,
) -> None:
    cfg = plan.config
    body = random.Random(repr(("org-body", cfg.seed, seed.index)))
    webrng = random.Random(repr(("org-web", cfg.seed, seed.index)))
    notes = NotesSynthesizer((cfg.seed, seed.index))
    if seed.kind == "government":
        org = _government_org(seed)
    else:
        org = _random_org_body(cfg, seed, body)
        chunk.events.extend(_random_events(org, body))
    chunk.orgs.append(org)
    _export_org_whois(plan, seed.index, org, body, chunk)
    sites: Dict[str, Site] = {}
    plant_org_sites(sites, org, webrng, cfg)
    plant_org_redirects(sites, org, webrng, cfg)
    chunk.sites.extend(sites.values())
    _export_org_pdb(plan, seed.index, org, body, notes, chunk, plan.transit_pool)
    _annotate_org_favicons(org, chunk)
    _org_populations(org, body, chunk)
    _org_stub_edges(org, body, plan.tier1, transit_set, providers_pool, chunk)


def _random_org_body(
    cfg: UniverseConfig, seed: OrgSeed, body: random.Random
) -> Org:
    namer = OrgNamer(cfg.seed, seed.index)
    category = seed.category
    name = namer.company_name(category.value)
    token = namer.brand_token(name)
    region = namer.pick_region()
    org = Org(
        org_id=seed.org_id,
        name=name,
        category=category,
        region=region,
        is_conglomerate=seed.is_conglomerate,
        brand_token=token,
    )
    countries = namer.pick_countries(region, seed.n_brands)
    unified_branding = body.random() < (0.85 if seed.carrier_scale else 0.30)
    acquired_p = 0.75 if seed.carrier_scale else 0.30
    for b, (country, cctld) in enumerate(countries):
        brand_name = name if b == 0 else f"{name} {country}"
        brand_token = token if (b == 0 or unified_branding) else (
            namer.brand_token(namer.company_name(category.value))
        )
        brand = Brand(
            brand_id=f"{seed.org_id}/b{b}",
            name=brand_name,
            org_id=seed.org_id,
            country=country,
            cctld=cctld,
            asns=list(seed.brand_asns[b]),
            language=namer.language_for(region),
            acquired=(b > 0 and body.random() < acquired_p),
        )
        _assign_website(cfg, org, brand, brand_token, unified_branding, body)
        org.brands.append(brand)
    return org


def _government_org(seed: OrgSeed) -> Org:
    g = int(seed.org_id.rsplit("-", 1)[1])
    org = Org(
        org_id=seed.org_id,
        name=f"National Networks Agency {g}",
        category=OrgCategory.ENTERPRISE,
        region="northam" if g == 0 else "europe",
    )
    country, cctld = ("US", "com") if g == 0 else ("DE", "de")
    org.brands = [
        Brand(
            brand_id=f"{seed.org_id}/main",
            name=org.name,
            org_id=org.org_id,
            country=country,
            cctld=cctld,
            asns=list(seed.brand_asns[0]),
        )
    ]
    return org


def _random_events(org: Org, rng: random.Random) -> List[MnAEvent]:
    if not org.is_conglomerate:
        return []
    events = []
    year = 2006 + rng.randint(0, 4)
    for brand in org.brands:
        if brand.acquired:
            # Serial acquirers buy a company every year or two; cap at
            # the snapshot's present (2024).
            year = min(2024, year + rng.randint(1, 3))
            events.append(
                MnAEvent(
                    kind=EventKind.ACQUISITION,
                    year=year,
                    subject_org=org.org_id,
                    object_id=brand.brand_id,
                )
            )
    return events


def _framework_brand(rng: random.Random) -> str:
    families = list(FRAMEWORK_FAVICON_BRANDS) + [
        f"webtemplate{k}-default" for k in range(_N_TEMPLATE_FAMILIES)
    ]
    return rng.choice(families)


def _assign_website(
    cfg: UniverseConfig,
    org: Org,
    brand: Brand,
    brand_token: str,
    unified: bool,
    rng: random.Random,
) -> None:
    has_site = rng.random() < (0.92 if org.is_conglomerate else 0.82)
    if not has_site:
        return
    token = org.brand_token if (unified and org.is_conglomerate) else brand_token
    host = f"www.{token}.{brand.cctld}"
    brand.website_host = host
    small = not org.is_conglomerate and len(brand.asns) <= 2
    if small and rng.random() < cfg.framework_favicon_rate:
        brand.favicon_brand = _framework_brand(rng)
    elif unified and org.is_conglomerate:
        # Unified branding usually means a unified logo too — the
        # same-favicon + same-token population step 1 resolves.  Some
        # subsidiaries nevertheless serve a localized icon variant,
        # which breaks the favicon link (the §5.3 DE-CIX example is
        # this divergence in the wild).
        brand.favicon_brand = (
            org.brand_token
            if rng.random() < 0.5
            else f"{org.brand_token}-{brand.country.lower()}-variant"
        )
    elif rng.random() < cfg.shared_favicon_rate:
        brand.favicon_brand = org.brand_token
    else:
        brand.favicon_brand = brand_token


def _export_org_whois(
    plan: UniversePlan,
    org_index: int,
    org: Org,
    rng: random.Random,
    chunk: UniverseChunk,
) -> None:
    cfg = plan.config
    local: Dict[str, WhoisOrg] = {}

    def whois_org_for(key: str, name: str, country: str, region: str) -> WhoisOrg:
        if key not in local:
            rir = _RIR_BY_REGION.get(region, "arin")
            handle = f"WO-{org_index:06d}-{len(local):02d}-{rir.upper()}"
            local[key] = WhoisOrg(
                org_id=handle, name=name, country=country, source=rir
            )
        return local[key]

    for brand in org.brands:
        key = plan.canonical.whois_group.get(brand.brand_id)
        if key is None:
            fragmented = (
                org.is_conglomerate
                and rng.random() < cfg.whois_fragmentation_rate
            )
            key = f"W:{brand.brand_id}" if fragmented else f"W:{org.org_id}"
        display = (
            brand.name if key.startswith("W:" + brand.brand_id) else org.name
        )
        record = whois_org_for(key, display, brand.country, org.region)
        for asn in brand.asns:
            chunk.delegations.append(
                ASNDelegation(
                    asn=asn,
                    org_id=record.org_id,
                    name=brand.name,
                    source=record.source,
                )
            )
    chunk.whois_orgs.extend(local.values())


def _export_org_pdb(
    plan: UniversePlan,
    org_index: int,
    org: Org,
    rng: random.Random,
    notes: NotesSynthesizer,
    chunk: UniverseChunk,
    transit_pool: Sequence[ASN],
) -> None:
    cfg = plan.config
    local: Dict[str, Organization] = {}

    def pdb_org_for(key: str, name: str, country: str) -> int:
        if key not in local:
            local[key] = Organization(
                org_id=org_index * PDB_ORG_ID_STRIDE + len(local) + 1,
                name=name,
                country=country,
            )
        return local[key].org_id

    for brand in org.brands:
        if not _registers_in_pdb(cfg, org, brand, plan.canonical, rng):
            continue
        key = plan.canonical.pdb_group.get(brand.brand_id)
        if key is None:
            rate = cfg.pdb_consolidation_rate
            if _is_carrier(org):
                # Serial-acquirer carriers run one NOC and one
                # PeeringDB org (the Lumen/CenturyLink pattern).
                rate = 0.40
            consolidated = org.is_conglomerate and rng.random() < rate
            key = f"P:{org.org_id}" if consolidated else f"P:{brand.brand_id}"
        display = org.name if key == f"P:{org.org_id}" else brand.name
        pdb_org_id = pdb_org_for(key, display, brand.country)
        registered_asns = _registered_asns(brand, plan.canonical, rng)
        for i, asn in enumerate(registered_asns):
            chunk.nets.append(
                _make_net(
                    cfg, plan, org, brand, asn, i, pdb_org_id,
                    rng, notes, chunk, transit_pool,
                )
            )
    chunk.pdb_orgs.extend(local.values())


def _registers_in_pdb(
    cfg: UniverseConfig,
    org: Org,
    brand: Brand,
    canonical: CanonicalPlan,
    rng: random.Random,
) -> bool:
    if brand.brand_id in canonical.register:
        return True
    rate = cfg.pdb_registration_rate
    if org.category in (OrgCategory.TRANSIT, OrgCategory.CONTENT):
        rate = min(0.95, rate * 1.9)
    if org.is_conglomerate:
        rate = min(0.95, rate * 1.4)
    return rng.random() < rate


def _registered_asns(
    brand: Brand, canonical: CanonicalPlan, rng: random.Random
) -> List[ASN]:
    if brand.brand_id in canonical.register:
        return list(brand.asns)
    asns = [brand.primary_asn]
    for asn in brand.asns:
        if asn != brand.primary_asn and rng.random() < 0.7:
            asns.append(asn)
    return sorted(asns)


def _make_net(
    cfg: UniverseConfig,
    plan: UniversePlan,
    org: Org,
    brand: Brand,
    asn: ASN,
    index_in_brand: int,
    pdb_org_id: int,
    rng: random.Random,
    notes: NotesSynthesizer,
    chunk: UniverseChunk,
    transit_pool: Sequence[ASN],
) -> Network:
    name = (
        brand.name
        if index_in_brand == 0
        else f"{brand.name} #{index_in_brand + 1}"
    )
    website = _website_field(cfg, brand, plan.canonical, rng)
    notes_text, aka_text, truth = _text_fields(
        cfg, org, brand, asn, plan, rng, notes, transit_pool
    )
    if notes_text or aka_text:
        chunk.notes_truth[asn] = truth
    info_type = {
        OrgCategory.ACCESS: "Cable/DSL/ISP",
        OrgCategory.TRANSIT: "NSP",
        OrgCategory.CONTENT: "Content",
        OrgCategory.ENTERPRISE: "Enterprise",
    }[org.category]
    return Network(
        asn=asn,
        name=name,
        org_id=pdb_org_id,
        aka=aka_text,
        notes=notes_text,
        website=website,
        info_type=info_type,
    )


def _website_field(
    cfg: UniverseConfig,
    brand: Brand,
    canonical: CanonicalPlan,
    rng: random.Random,
) -> str:
    if brand.brand_id in canonical.website_field:
        return canonical.website_field[brand.brand_id]
    if brand.brand_id.startswith("gt-"):
        return brand.website_url
    if rng.random() < cfg.platform_website_rate:
        return f"https://{rng.choice(PLATFORM_HOSTS)}/"
    if brand.website_host and rng.random() < cfg.website_rate:
        return brand.website_url
    return ""


def _text_fields(
    cfg: UniverseConfig,
    org: Org,
    brand: Brand,
    asn: ASN,
    plan: UniversePlan,
    rng: random.Random,
    notes: NotesSynthesizer,
    transit_pool: Sequence[ASN],
) -> Tuple[str, str, Tuple[ASN, ...]]:
    """Synthesize (notes, aka, true_siblings) for one net record."""
    notes_text = ""
    aka_text = ""
    truth: Set[ASN] = set()

    planted_notes = plan.canonical.notes.get(asn)
    planted_aka = plan.canonical.aka.get(asn)
    if planted_notes is not None:
        notes_text = planted_notes.text
        truth.update(planted_notes.true_siblings)
    if planted_aka is not None:
        aka_text = planted_aka.text
        truth.update(planted_aka.true_siblings)
    if planted_notes is not None or planted_aka is not None:
        return notes_text, aka_text, tuple(sorted(truth))

    if rng.random() >= cfg.notes_rate:
        return "", "", ()
    other_asns = [a for a in org.asns if a != asn]
    can_report_siblings = bool(other_asns)
    # Operators with sibling networks are exactly the ones who write
    # numeric notes (the paper's Table 4 sample: ~60% of numeric
    # records carried true sibling reports).
    numeric_rate = cfg.numeric_notes_rate
    sibling_rate = cfg.sibling_notes_rate
    if can_report_siblings:
        numeric_rate = min(0.9, numeric_rate * 2.0)
        sibling_rate = 0.5
    if rng.random() >= numeric_rate:
        synthesized = notes.plain_notes()
        return synthesized.text, "", ()

    roll = rng.random()
    if can_report_siblings and roll < sibling_rate:
        # Operators mostly list their own brand's other ASNs (already
        # sharing a WHOIS org); cross-brand reports are the rarer,
        # informative case.
        same_brand = [a for a in brand.asns if a != asn]
        pool = same_brand if (same_brand and rng.random() < 0.7) else other_asns
        count = min(len(pool), rng.randint(1, 2))
        siblings = sorted(rng.sample(pool, count))
        upstream = (
            sorted(rng.sample(list(transit_pool), min(3, len(transit_pool))))
            if rng.random() < 0.25 and transit_pool
            else ()
        )
        synthesized = notes.sibling_notes(
            org_name=org.name,
            siblings=siblings,
            language=brand.language,
            with_decoys=rng.random() < 0.3,
            with_upstreams=upstream,
        )
        if rng.random() < 0.3:
            aka_synth = notes.aka(
                alias=f"{org.name} {brand.country}",
                sibling_asn=rng.choice(other_asns),
            )
            aka_text = aka_synth.text
            truth.update(aka_synth.true_siblings)
        notes_text = synthesized.text
        truth.update(synthesized.true_siblings)
    elif roll < 0.75 and transit_pool:
        count = min(len(transit_pool), rng.randint(2, 5))
        synthesized = notes.upstream_notes(
            upstreams=sorted(rng.sample(list(transit_pool), count)),
            language=brand.language,
        )
        notes_text = synthesized.text
    else:
        synthesized = notes.decoy_notes()
        notes_text = synthesized.text
    return notes_text, aka_text, tuple(sorted(truth))


def _annotate_org_favicons(org: Org, chunk: UniverseChunk) -> None:
    for brand in org.brands:
        if not brand.favicon_brand:
            continue
        chunk.favicon_company[brand.favicon_brand] = (
            not is_framework_favicon_brand(brand.favicon_brand)
        )


def _org_populations(
    org: Org, rng: random.Random, chunk: UniverseChunk
) -> None:
    """Heavy-tailed raw user draws for one access org (un-normalized)."""
    if org.category is not OrgCategory.ACCESS:
        return
    boost = 3.0 if org.org_id.startswith("gt-") else 1.0
    for brand in org.brands:
        base = rng.paretovariate(1.16) * 1_000.0 * boost
        if org.is_conglomerate:
            base *= 2.5
        weights = [rng.random() + 0.2 for _ in brand.asns]
        total_weight = sum(weights)
        for asn, weight in zip(brand.asns, weights):
            chunk.raw_populations.append(
                (asn, brand.country, base * weight / total_weight)
            )


def _org_stub_edges(
    org: Org,
    rng: random.Random,
    tier1: Sequence[ASN],
    transit_set: Set[ASN],
    providers_pool: Sequence[ASN],
    chunk: UniverseChunk,
) -> None:
    for asn in org.asns:
        if asn in transit_set:
            continue
        n_providers = rng.randint(1, 3)
        if rng.random() < 0.1 and tier1:
            chunk.stub_edges.append((rng.choice(tier1), asn))
            n_providers -= 1
        for provider in rng.sample(
            providers_pool, min(len(providers_pool), max(1, n_providers))
        ):
            chunk.stub_edges.append((provider, asn))


def _materialize_canonical(plan: UniversePlan) -> UniverseChunk:
    """Chunk 0: the paper's planted scenarios, fully exported."""
    cfg = plan.config
    canonical = plan.canonical
    chunk = UniverseChunk(index=0)
    rng = random.Random(repr(("canonical", cfg.seed)))
    webrng = random.Random(repr(("canonical-web", cfg.seed)))
    notes = NotesSynthesizer((cfg.seed, "canonical"))
    transit_set = set(plan.tier1) | set(plan.tier2)
    providers_pool = plan.tier2 or plan.tier1

    chunk.events.extend(canonical.events)
    for ci, org in enumerate(canonical.orgs):
        chunk.orgs.append(org)
        _export_org_whois(plan, ci, org, rng, chunk)

    sites: Dict[str, Site] = {}
    for org in canonical.orgs:
        plant_org_sites(sites, org, webrng, cfg)
    for org in canonical.orgs:
        plant_org_redirects(sites, org, webrng, cfg)
    for extra in canonical.extra_sites:
        if extra.host in sites:
            continue
        site = Site(
            host=extra.host,
            title=extra.title or extra.host,
            favicon=(
                make_favicon(extra.favicon_brand)
                if extra.favicon_brand else b""
            ),
        )
        if extra.redirect_target:
            site.redirect_kind = extra.redirect_kind
            site.redirect_target = extra.redirect_target
        sites[extra.host] = site
    for host, (target, kind) in canonical.redirects.items():
        site = sites.get(host)
        if site is None:
            site = sites[host] = Site(host=host, title=host)
        site.redirect_kind = kind
        site.redirect_target = target
        site.alive = True
    for host in canonical.alive_hosts:
        site = sites.get(host)
        if site is not None:
            site.alive = True
    # Platform hosts (facebook & friends) that small operators point
    # their PDB website at — blocklist targets.
    for host in PLATFORM_HOSTS:
        if host not in sites:
            sites[host] = Site(host=host, title=host, favicon=make_favicon(host))
    chunk.sites.extend(sites.values())

    for ci, org in enumerate(canonical.orgs):
        # Canonical orgs' drawn filler notes name no foreign ASNs (empty
        # upstream pool): narrated clusters keep their exact paper
        # memberships on every seed (see _plan_backbone).
        _export_org_pdb(plan, ci, org, rng, notes, chunk, ())
        _annotate_org_favicons(org, chunk)
        _org_populations(org, rng, chunk)
        _org_stub_edges(org, rng, plan.tier1, transit_set, providers_pool, chunk)
    return chunk


# -- assembly ---------------------------------------------------------------


def assemble_universe(
    plan: UniversePlan,
    chunks: Optional[Iterator[UniverseChunk]] = None,
) -> Universe:
    """Fold chunks into the full :class:`Universe`.

    The only work that needs a global view happens here: dataset
    construction, population normalization to ``config.total_users``,
    and the tier-1/tier-2 backbone edges (drawn from the dedicated
    ``topology`` substream, independent of every per-org stream).
    """
    cfg = plan.config
    ground_truth = GroundTruth()
    events: List[MnAEvent] = []
    whois_orgs: List[WhoisOrg] = []
    delegations: List[ASNDelegation] = []
    pdb_orgs: List[Organization] = []
    nets: List[Network] = []
    web = SimulatedWeb()
    annotations = Annotations()
    raw_populations: List[Tuple[ASN, str, float]] = []
    stub_edges: List[Tuple[ASN, ASN]] = []

    for chunk in (chunks if chunks is not None else stream_chunks(plan)):
        for org in chunk.orgs:
            ground_truth.add(org)
        events.extend(chunk.events)
        whois_orgs.extend(chunk.whois_orgs)
        delegations.extend(chunk.delegations)
        pdb_orgs.extend(chunk.pdb_orgs)
        nets.extend(chunk.nets)
        for site in chunk.sites:
            if site.host not in web:
                web.add_site(site)
        annotations.notes_truth.update(chunk.notes_truth)
        annotations.favicon_company.update(chunk.favicon_company)
        raw_populations.extend(chunk.raw_populations)
        stub_edges.extend(chunk.stub_edges)
    ground_truth.invalidate_index()

    timeline = Timeline(events=events)
    whois = WhoisDataset.build(whois_orgs, delegations)
    pdb = PDBSnapshot.build(
        orgs=pdb_orgs,
        nets=nets,
        meta={
            "generated": "synthetic",
            "seed": cfg.seed,
            "source": "repro.universe",
        },
    )

    total_raw = sum(v for _, _, v in raw_populations) or 1.0
    scale = cfg.total_users / total_raw
    apnic = ApnicDataset()
    for asn, country, value in raw_populations:
        users = int(value * scale)
        if users > 0:
            apnic.add(PopulationRecord(asn=asn, country=country, users=users))

    topology = _assemble_topology(plan, stub_edges)
    universe = Universe(
        config=cfg,
        ground_truth=ground_truth,
        timeline=timeline,
        whois=whois,
        pdb=pdb,
        web=web,
        apnic=apnic,
        topology=topology,
        annotations=annotations,
    )
    _LOG.info(
        "universe assembled: %d orgs, %d ASNs, %d PDB nets, %d sites",
        len(ground_truth), len(whois), len(pdb), len(web),
    )
    return universe


def _assemble_topology(
    plan: UniversePlan, stub_edges: Sequence[Tuple[ASN, ASN]]
) -> ASTopology:
    """Backbone (tier-1 clique + tier-2 attachments) plus chunk stubs."""
    import itertools

    topology = ASTopology()
    tier1 = list(plan.tier1)
    rng = random.Random(repr(("topology", plan.config.seed)))
    for asn in tier1:
        topology.add_asn(asn)
    for a, b in itertools.combinations(tier1, 2):
        topology.add_p2p(a, b)
    for asn in plan.tier2:
        for provider in rng.sample(tier1, min(len(tier1), rng.randint(2, 3))):
            topology.add_p2c(provider, asn)
    for provider, customer in stub_edges:
        topology.add_p2c(provider, customer)
    return topology
