"""Tables 7–8: Borges's impact on access-network populations.

Joins the Borges and AS2Org mappings with the APNIC-style population
dataset.  A Borges organization "changed" when its composition differs
from every AS2Org organization; for changed organizations we report the
population of the largest prior (AS2Org) component versus the merged
(Borges) total, and the *marginal growth* — merged total minus largest
prior component (§6.1's definition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..apnic import ApnicDataset
from ..core.mapping import OrgMapping
from ..metrics.growth import baseline_components
from ..types import Cluster


@dataclass(frozen=True)
class ChangedOrg:
    """One reconfigured organization with its population accounting."""

    cluster: Cluster
    name: str
    users_borges: int
    users_largest_prior: int

    @property
    def marginal_growth(self) -> int:
        return max(0, self.users_borges - self.users_largest_prior)


@dataclass
class PopulationChangeSummary:
    """Table 7's rows plus the aggregate §6.1 reports."""

    changed_count: int
    unchanged_count: int
    mean_users_changed_as2org: float
    mean_users_changed_borges: float
    mean_users_unchanged: float
    total_marginal_growth: int
    total_users: int

    @property
    def marginal_growth_pct_of_internet(self) -> float:
        if not self.total_users:
            return 0.0
        return 100.0 * self.total_marginal_growth / self.total_users


def changed_orgs(
    borges: OrgMapping,
    as2org: OrgMapping,
    apnic: ApnicDataset,
) -> List[ChangedOrg]:
    """All Borges organizations whose composition changed, with users."""
    result: List[ChangedOrg] = []
    for cluster in borges.changed_clusters_vs(as2org):
        components = baseline_components(cluster, as2org.cluster_of)
        users_total = apnic.users_of_group(cluster)
        users_largest = max(
            (apnic.users_of_group(component) for component in components),
            default=0,
        )
        result.append(
            ChangedOrg(
                cluster=cluster,
                name=borges.org_name_of(min(cluster)),
                users_borges=users_total,
                users_largest_prior=users_largest,
            )
        )
    return result


def population_change_summary(
    borges: OrgMapping,
    as2org: OrgMapping,
    apnic: ApnicDataset,
) -> PopulationChangeSummary:
    """Table 7: changed vs unchanged organizations and their mean users."""
    changed = changed_orgs(borges, as2org, apnic)
    changed_clusters = {c.cluster for c in changed}
    unchanged = [
        cluster for cluster in borges.clusters()
        if cluster not in changed_clusters
    ]
    def mean(values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return PopulationChangeSummary(
        changed_count=len(changed),
        unchanged_count=len(unchanged),
        mean_users_changed_as2org=mean([c.users_largest_prior for c in changed]),
        mean_users_changed_borges=mean([c.users_borges for c in changed]),
        mean_users_unchanged=mean(
            [apnic.users_of_group(cluster) for cluster in unchanged]
        ),
        total_marginal_growth=sum(c.marginal_growth for c in changed),
        total_users=apnic.total_users,
    )


def top_population_growth(
    borges: OrgMapping,
    as2org: OrgMapping,
    apnic: ApnicDataset,
    top_n: int = 20,
) -> List[Dict[str, object]]:
    """Table 8: the top-N organizations by marginal population growth."""
    changed = changed_orgs(borges, as2org, apnic)
    changed.sort(key=lambda c: (-c.marginal_growth, c.name))
    rows: List[Dict[str, object]] = []
    for org in changed[:top_n]:
        rows.append(
            {
                "company": org.name,
                "as2org_users": org.users_largest_prior,
                "borges_users": org.users_borges,
                "difference": org.marginal_growth,
            }
        )
    return rows
