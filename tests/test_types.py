"""Unit tests for repro.types: ASN validation and cluster helpers."""

import pytest

from repro.types import (
    clusters_to_asn_map,
    freeze_cluster,
    invert_asn_map,
    is_reserved_asn,
    is_valid_asn,
    jaccard,
    partition_sizes,
    validate_asn,
)


class TestASNValidation:
    def test_ordinary_asn_is_valid(self):
        assert is_valid_asn(3356)

    def test_32bit_asn_is_valid(self):
        assert is_valid_asn(262287)
        assert is_valid_asn(4_199_999_999)

    def test_zero_is_invalid(self):
        assert not is_valid_asn(0)

    def test_negative_is_invalid(self):
        assert not is_valid_asn(-5)

    def test_too_large_is_invalid(self):
        assert not is_valid_asn(2**32)

    def test_bool_is_not_an_asn(self):
        assert not is_valid_asn(True)

    def test_as_trans_is_reserved(self):
        assert is_reserved_asn(23456)
        assert not is_valid_asn(23456)

    def test_private_range_is_reserved(self):
        assert is_reserved_asn(64512)
        assert is_reserved_asn(65534)
        assert is_reserved_asn(4_200_000_000)

    def test_documentation_range_is_reserved(self):
        assert is_reserved_asn(64496)
        assert is_reserved_asn(65551)

    def test_edges_of_private_range(self):
        assert not is_valid_asn(65535)
        assert is_valid_asn(65552)

    def test_validate_asn_passes_through(self):
        assert validate_asn(15169) == 15169

    def test_validate_asn_raises(self):
        with pytest.raises(ValueError):
            validate_asn(0)


class TestClusterHelpers:
    def test_freeze_cluster_dedupes(self):
        assert freeze_cluster([1, 2, 2, 3]) == frozenset({1, 2, 3})

    def test_clusters_to_asn_map(self):
        a = frozenset({1, 2})
        b = frozenset({3})
        index = clusters_to_asn_map([a, b])
        assert index[1] is a
        assert index[3] is b

    def test_clusters_to_asn_map_rejects_overlap(self):
        with pytest.raises(ValueError):
            clusters_to_asn_map([frozenset({1, 2}), frozenset({2, 3})])

    def test_partition_sizes_sorted_descending(self):
        assert partition_sizes([[1], [2, 3, 4], [5, 6]]) == [3, 2, 1]

    def test_jaccard_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_jaccard_empty_sets(self):
        assert jaccard(set(), set()) == 0.0

    def test_invert_asn_map(self):
        inverted = invert_asn_map({1: "a", 2: "a", 3: "b"})
        assert inverted == {"a": {1, 2}, "b": {3}}
