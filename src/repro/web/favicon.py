"""Favicon API client (the Google Favicon API stand-in of §4.3.1).

The real pipeline downloads icons through
``t3.gstatic.com/faviconV2?...&url=<site>&size=16``; offline we serve the
same contract from the simulated web: given a site URL, return the icon
bytes its host serves, or ``None`` after fallbacks fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..logutil import get_logger
from ..obs.registry import MetricsRegistry, get_registry
from ..types import FaviconHash, URL
from .simweb import SimulatedWeb, favicon_hash
from .url import host_of

_LOG = get_logger("web.favicon")


@dataclass(frozen=True)
class FaviconRecord:
    """An icon fetched for one final URL."""

    url: URL
    content: bytes

    @property
    def digest(self) -> FaviconHash:
        return favicon_hash(self.content)


class FaviconAPI:
    """Fetch favicons for final URLs, with per-host caching.

    Mirrors the Google Favicon API's behaviour of returning an icon for a
    *site* (host), not a page: two URLs on the same host yield the same
    icon.
    """

    def __init__(
        self,
        web: SimulatedWeb,
        size: int = 16,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._web = web
        self._size = size
        self._registry = registry
        self._cache: Dict[str, Optional[bytes]] = {}
        self.request_count = 0

    @property
    def _metrics(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def request_url(self, site_url: URL) -> str:
        """The API request URL (for logging parity with the paper)."""
        return (
            "https://t3.gstatic.com/faviconV2?client=SOCIAL&type=FAVICON"
            f"&fallback_opts=TYPE,SIZE,URL&url={site_url}&size={self._size}"
        )

    def fetch(self, site_url: URL) -> Optional[FaviconRecord]:
        """Fetch the favicon for *site_url*; ``None`` if the site has none."""
        host = host_of(site_url)
        if host is None:
            return None
        if host not in self._cache:
            self.request_count += 1
            self._cache[host] = self._web.favicon_bytes(site_url)
            self._metrics.counter(
                "favicon_requests_total", "favicon API requests (per host)",
                outcome="hit" if self._cache[host] is not None else "none",
            ).inc()
        content = self._cache[host]
        if content is None:
            return None
        return FaviconRecord(url=site_url, content=content)

    def fetch_many(
        self, site_urls: Iterable[URL]
    ) -> Dict[URL, Optional[FaviconRecord]]:
        return {url: self.fetch(url) for url in site_urls}

    def group_by_favicon(
        self, site_urls: Iterable[URL]
    ) -> Dict[FaviconHash, Tuple[URL, ...]]:
        """Group final URLs by favicon digest (§4.3.3's candidate groups).

        URLs whose sites serve no icon are dropped; the paper similarly
        reports 3 final URLs with no favicon.
        """
        groups: Dict[FaviconHash, list] = {}
        for url in site_urls:
            record = self.fetch(url)
            if record is None:
                continue
            groups.setdefault(record.digest, []).append(url)
        return {
            digest: tuple(sorted(set(urls))) for digest, urls in groups.items()
        }
