#!/usr/bin/env python3
"""Plugging a custom LLM backend into Borges.

The pipeline talks to any object implementing ``ChatBackend.complete``.
This example shows three backends:

1. the offline **simulated** GPT-4o-mini (the default),
2. a **perfect oracle** (error injection disabled) — the ablation upper
   bound for the extraction stage,
3. a sketch of the **real OpenAI-compatible** driver (not called here;
   requires network + API key).

It then validates stage accuracy for (1) and (2) against the universe's
ground-truth annotations — reproducing the Table 4 exercise.

Run:  python examples/custom_llm_backend.py
"""

import os

from repro.analysis import validate_extraction
from repro.config import BorgesConfig, LLMConfig, UniverseConfig
from repro.core.ner import NERModule
from repro.llm import ChatClient, make_default_client
from repro.llm.openai_compat import OpenAICompatBackend
from repro.universe import generate_universe


def validate(name: str, llm_config: LLMConfig, universe) -> None:
    client = make_default_client(llm_config)
    ner = NERModule(client, BorgesConfig(llm=llm_config))
    validation = validate_extraction(
        ner, universe.pdb, universe.annotations, sample_size=320
    )
    counts = validation.counts
    print(
        f"{name:<22} accuracy={counts.accuracy:.3f} "
        f"precision={counts.precision:.3f} recall={counts.recall:.3f} "
        f"(TP={counts.tp} TN={counts.tn} FP={counts.fp} FN={counts.fn})"
    )


def main() -> None:
    universe = generate_universe(UniverseConfig(n_organizations=2000))
    print("Table-4-style validation over 320 annotated records:\n")

    validate("simulated GPT-4o-mini", LLMConfig(), universe)
    validate(
        "perfect oracle",
        LLMConfig(extraction_error_rate=0.0, classifier_error_rate=0.0),
        universe,
    )

    print(
        "\nTo run against a real OpenAI-compatible endpoint instead "
        "(the paper's setup):"
    )
    print(
        "  backend = OpenAICompatBackend(base_url='https://api.openai.com/v1',\n"
        "                                api_key=os.environ['OPENAI_API_KEY'])\n"
        "  client = ChatClient(backend, config=LLMConfig(model='gpt-4o-mini'))\n"
        "  pipeline = BorgesPipeline(whois, pdb, web, client=client)"
    )
    if os.environ.get("OPENAI_API_KEY"):
        print("\nOPENAI_API_KEY detected — the adapter is importable and ready:")
        backend = OpenAICompatBackend(
            base_url=os.environ.get("OPENAI_BASE_URL", "https://api.openai.com/v1"),
            api_key=os.environ["OPENAI_API_KEY"],
        )
        print(f"  backend: {backend.name}")


if __name__ == "__main__":
    main()
