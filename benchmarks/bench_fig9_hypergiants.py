"""Figure 9 — hypergiant organization sizes under the three methods.

Paper: 5 of 16 hypergiants improve under Borges — EdgeCast gains 9
networks (the Limelight consolidation), Google +3, Microsoft +1,
Amazon +1 — the rest are already complete in WHOIS.  These exact deltas
are planted as canonical scenarios, so this bench asserts them directly.
"""

from conftest import run_and_render


def test_fig9_hypergiant_sizes(benchmark, ctx):
    report = run_and_render(benchmark, ctx, "fig9")
    rows = {str(row["hypergiant"]): row for row in report.rows}

    assert len(rows) == 16

    # The paper's exact gains.
    assert rows["EdgeCast"]["gain_vs_as2org"] == 9
    assert rows["Google"]["gain_vs_as2org"] == 3
    assert rows["Microsoft"]["gain_vs_as2org"] == 1
    assert rows["Amazon"]["gain_vs_as2org"] == 1

    improved = [r for r in rows.values() if r["gain_vs_as2org"] > 0]
    assert 5 <= len(improved) <= 7  # paper: 5 improve

    # No hypergiant shrinks; as2org+ sits between the two.
    for row in rows.values():
        assert row["as2org"] <= row["as2org_plus"] <= row["borges"]
