"""Plain-text rendering of experiment outputs.

Every experiment returns a :class:`Report`: a title, table rows (a list
of dicts sharing keys), free-form notes, and optional named data series
(for the figures).  :func:`render_table` produces aligned ASCII output
for terminals, logs and the bench harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class Report:
    """One regenerated table or figure."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Figures carry named (x, y) series instead of / besides rows.
    series: Dict[str, Tuple[List[float], List[float]]] = field(
        default_factory=dict
    )

    def render(self, max_rows: Optional[int] = None, charts: bool = True) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(render_table(self.rows, max_rows=max_rows))
        for name, (xs, ys) in self.series.items():
            parts.append(
                f"series {name!r}: {len(xs)} points, "
                f"x∈[{_fmt(min(xs))}, {_fmt(max(xs))}], "
                f"y∈[{_fmt(min(ys))}, {_fmt(max(ys))}]"
            )
            if charts and len(xs) >= 2:
                parts.append(render_ascii_chart(xs, ys, title=name))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value):,}"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_ascii_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 64,
    height: int = 10,
    title: str = "",
) -> str:
    """A terminal line chart: y binned over x, drawn with block rows.

    Figures are regenerated as data series; this gives the CLI and bench
    logs a visual of the *shape* (the reproduction target) without any
    plotting dependency.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        return "(chart unavailable)"
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    span_x = (x_max - x_min) or 1.0
    span_y = (y_max - y_min) or 1.0
    # Bin mean y per column.
    columns: List[List[float]] = [[] for _ in range(width)]
    for x, y in zip(xs, ys):
        col = min(width - 1, int((x - x_min) / span_x * width))
        columns[col].append(y)
    levels: List[Optional[int]] = []
    previous = 0
    for bucket in columns:
        if bucket:
            mean = sum(bucket) / len(bucket)
            previous = min(
                height - 1, int((mean - y_min) / span_y * (height - 1) + 0.5)
            )
        levels.append(previous)
    grid = []
    for row in range(height - 1, -1, -1):
        line = "".join("█" if level >= row else " " for level in levels)
        grid.append("  |" + line)
    footer = "  +" + "-" * width
    header = f"  {title} (y: {_fmt(y_min)}..{_fmt(y_max)})" if title else ""
    body = "\n".join(grid) + "\n" + footer
    return (header + "\n" + body) if header else body


def render_table(
    rows: Sequence[Dict[str, object]],
    max_rows: Optional[int] = None,
) -> str:
    """Align a list of same-keyed dicts into an ASCII table."""
    if not rows:
        return "(no rows)"
    shown = list(rows if max_rows is None else rows[:max_rows])
    columns = list(shown[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in shown]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    def line(items: Sequence[str]) -> str:
        return "  ".join(item.rjust(width) for item, width in zip(items, widths))

    out = [line(columns), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    if max_rows is not None and len(rows) > max_rows:
        out.append(f"... ({len(rows) - max_rows} more rows)")
    return "\n".join(out)
