"""Figure 8: marginal network growth of organizations along AS-Rank.

For each AS in rank order, the marginal growth is how many more networks
its Borges organization holds than its AS2Org organization — the paper's
"how many additional networks are associated with an organization,
relative to its highest-ranked ASN".  Only each organization's
highest-ranked ASN contributes (avoiding double counting), and the figure
plots the cumulative sum plus least-squares slopes over the top 100,
1,000 and 10,000 ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

import numpy as np

from ..asrank.rank import ASRank
from ..core.mapping import OrgMapping
from ..types import ASN


@dataclass
class TransitGrowthSeries:
    """The Fig. 8 data: per-rank marginal growth and regression slopes."""

    ranks: List[int] = field(default_factory=list)
    marginal_growth: List[int] = field(default_factory=list)
    cumulative_growth: List[int] = field(default_factory=list)
    slopes: Dict[int, float] = field(default_factory=dict)

    def mean_growth_top(self, n: int) -> float:
        """Average marginal gain over the top-*n* ranked ASNs."""
        selected = [
            g for r, g in zip(self.ranks, self.marginal_growth) if r <= n
        ]
        return sum(selected) / len(selected) if selected else 0.0


def transit_marginal_growth(
    borges: OrgMapping,
    as2org: OrgMapping,
    rank: ASRank,
    fit_windows: Sequence[int] = (100, 1_000, 10_000),
) -> TransitGrowthSeries:
    """Compute the Fig. 8 series from two mappings and an AS-Rank table."""
    series = TransitGrowthSeries()
    seen_orgs: Set[int] = set()
    for entry in rank:
        if entry.asn not in borges:
            continue
        org_index = borges.org_index_of(entry.asn)
        if org_index in seen_orgs:
            continue  # only the org's highest-ranked ASN counts
        seen_orgs.add(org_index)
        growth = len(borges.cluster_of(entry.asn)) - len(
            as2org.cluster_of(entry.asn)
        )
        series.ranks.append(entry.rank)
        series.marginal_growth.append(max(0, growth))
    cumulative = 0
    for growth in series.marginal_growth:
        cumulative += growth
        series.cumulative_growth.append(cumulative)
    for window in fit_windows:
        series.slopes[window] = _fit_slope(series, window)
    return series


def _fit_slope(series: TransitGrowthSeries, window: int) -> float:
    """Least-squares slope of cumulative growth over ranks ≤ *window*."""
    xs = [r for r in series.ranks if r <= window]
    if len(xs) < 2:
        return 0.0
    ys = series.cumulative_growth[: len(xs)]
    slope, _intercept = np.polyfit(np.asarray(xs, dtype=float),
                                   np.asarray(ys, dtype=float), 1)
    return float(slope)
