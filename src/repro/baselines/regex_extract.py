"""as2org+'s regex-based ASN extraction from notes/aka.

The contrast with Borges's LLM stage (§2.1): plain pattern matching with
no semantic context.  Two pattern tiers mirror the published tool:

* *strict* — AS-prefixed tokens only (``AS3356``, ``ASN 3356``);
* *loose* — additionally, bare digit runs in the plausible ASN range,
  which is what drags in phone numbers, years and max-prefix values (the
  false positives the paper says required manual curation).

A relationship filter (drop candidates that are the record's provider in
a known topology) reproduces as2org+'s customer-to-provider cleanup.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Set

from ..asrank.topology import ASTopology
from ..types import ASN, is_valid_asn

_AS_PREFIXED_RE = re.compile(r"\b[Aa][Ss][Nn]?[\s:#-]{0,2}(\d{1,10})\b")
_BARE_NUMBER_RE = re.compile(r"\b(\d{2,10})\b")

#: Bare numbers below this are almost never ASNs worth extracting (the
#: published tool bounds the range; small ints are list markers etc.).
_BARE_MIN = 100
_BARE_MAX = 4_000_000_000


def regex_extract_asns(
    text: str,
    own_asn: Optional[ASN] = None,
    loose: bool = True,
) -> List[ASN]:
    """Extract candidate sibling ASNs from *text* the as2org+ way.

    No context analysis: an upstream listing and a sibling report look
    identical to this function.
    """
    candidates: Set[ASN] = set()
    for match in _AS_PREFIXED_RE.finditer(text or ""):
        value = int(match.group(1))
        if is_valid_asn(value):
            candidates.add(value)
    if loose:
        for match in _BARE_NUMBER_RE.finditer(text or ""):
            value = int(match.group(1))
            if _BARE_MIN <= value <= _BARE_MAX and is_valid_asn(value):
                candidates.add(value)
    if own_asn is not None:
        candidates.discard(own_asn)
    return sorted(candidates)


def filter_provider_relations(
    own_asn: ASN,
    candidates: Iterable[ASN],
    topology: ASTopology,
) -> List[ASN]:
    """Drop candidates that are *own_asn*'s (transitive) providers.

    as2org+'s customer-to-provider filter: a network reporting its
    upstream connectivity names providers, not siblings.  Walks the
    provider closure up to a bounded depth.
    """
    providers: Set[ASN] = set()
    frontier = topology.providers_of(own_asn)
    for _ in range(8):
        if not frontier:
            break
        providers |= frontier
        next_frontier: Set[ASN] = set()
        for asn in frontier:
            next_frontier |= topology.providers_of(asn) - providers
        frontier = next_frontier
    return sorted(a for a in candidates if a not in providers)
