"""LLM substrate.

A provider-agnostic chat-completions client (:mod:`repro.llm.client`)
with the paper's exact prompts (:mod:`repro.llm.prompts`, Listings 2–3),
structured-output parsing (:mod:`repro.llm.parsing`), and a deterministic
offline backend (:mod:`repro.llm.simulated`) that stands in for
GPT-4o-mini at temperature 0.

The simulated backend routes rendered prompts to two NLP engines:

* :mod:`repro.llm.extraction_engine` — semantic sibling-ASN extraction
  from notes/aka text (multilingual keyword context classification).
* :mod:`repro.llm.classifier_engine` — favicon + URL-list company vs
  web-framework classification (the "visual" recognition analogue).

Both engines pass through :mod:`repro.llm.errors_model`, a calibrated
deterministic error injector that reproduces the paper's observed
accuracy (Table 4: 0.947, Table 5: 0.986) instead of behaving as a
perfect oracle.
"""

from .client import (
    ChatBackend,
    ChatClient,
    ChatMessage,
    ChatResponse,
    ImageContent,
    TextContent,
)
from .parsing import ClassifierVerdict, ExtractionResult
from .prompts import render_classifier_messages, render_extraction_prompt
from .simulated import SimulatedChatBackend, make_default_client

__all__ = [
    "ChatBackend",
    "ChatClient",
    "ChatMessage",
    "ChatResponse",
    "ImageContent",
    "TextContent",
    "ClassifierVerdict",
    "ExtractionResult",
    "render_classifier_messages",
    "render_extraction_prompt",
    "SimulatedChatBackend",
    "make_default_client",
]
