"""Unit tests for metrics: Organization Factor, confusion counts, growth."""

import pytest

from repro.core.mapping import OrgMapping
from repro.errors import ConfigError
from repro.metrics import ConfusionCounts, marginal_growth, org_factor
from repro.metrics.growth import baseline_components, marginal_members_growth
from repro.metrics.org_factor import (
    cumulative_curve,
    org_factor_from_mapping,
    singleton_curve,
)


class TestOrgFactor:
    def test_all_singletons_is_zero(self):
        assert org_factor([1] * 50) == 0.0

    def test_single_org_is_one(self):
        assert org_factor([50]) == 1.0

    def test_monotone_in_consolidation(self):
        # Merging two orgs can only raise theta.
        fragmented = org_factor([2, 2, 1, 1, 1, 1])
        merged = org_factor([4, 1, 1, 1, 1])
        assert merged > fragmented

    def test_range_bounds(self):
        for sizes in ([3, 2, 1], [10, 5, 5], [1, 1, 7]):
            value = org_factor(sizes)
            assert 0.0 <= value <= 1.0

    def test_order_irrelevant(self):
        assert org_factor([1, 5, 3]) == org_factor([5, 3, 1])

    def test_zeros_ignored(self):
        assert org_factor([3, 2, 0, 0]) == org_factor([3, 2])

    def test_trivial_inputs(self):
        assert org_factor([]) == 0.0
        assert org_factor([1]) == 0.0

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            org_factor([3, -1])

    def test_unknown_normalization_rejected(self):
        with pytest.raises(ConfigError):
            org_factor([1, 2], normalization="bogus")

    def test_paper_literal_is_half_area(self):
        sizes = [4, 3, 2, 1, 1, 1]
        n = sum(sizes)
        normalized = org_factor(sizes)
        literal = org_factor(sizes, normalization="paper_literal")
        # normalized uses n(n-1)/2; literal uses n^2.
        assert literal == pytest.approx(normalized * (n - 1) / (2 * n))

    def test_exact_small_case(self):
        # sizes [2, 1], n=3: C = [2, 3, 3]; area = (2-1)+(3-2)+(3-3) = 2;
        # max area = 3*2/2 = 3.
        assert org_factor([2, 1]) == pytest.approx(2 / 3)

    def test_from_mapping(self):
        mapping = OrgMapping(universe=[1, 2, 3], clusters=[{1, 2}])
        assert org_factor_from_mapping(mapping) == pytest.approx(2 / 3)


class TestCurves:
    def test_cumulative_curve_shape(self):
        xs, ys = cumulative_curve([3, 1])
        assert xs == [1, 2, 3, 4]
        assert ys == [3, 4, 4, 4]

    def test_cumulative_curve_padding(self):
        xs, ys = cumulative_curve([2], pad_to=5)
        assert len(xs) == 5
        assert ys[-1] == 2

    def test_singleton_curve_is_diagonal(self):
        xs, ys = singleton_curve(4)
        assert xs == ys == [1, 2, 3, 4]

    def test_curve_consistent_with_theta(self):
        sizes = [5, 3, 1, 1]
        xs, ys = cumulative_curve(sizes)
        n = sum(sizes)
        area = sum(y - x for x, y in zip(xs, ys))
        assert org_factor(sizes) == pytest.approx(area / (n * (n - 1) / 2))


class TestConfusionCounts:
    def test_rates(self):
        counts = ConfusionCounts(tp=187, tn=116, fn=12, fp=5)
        assert counts.total == 320
        assert counts.precision == pytest.approx(0.974, abs=1e-3)
        assert counts.recall == pytest.approx(0.94, abs=1e-3)
        assert counts.accuracy == pytest.approx(0.947, abs=1e-3)

    def test_empty_counts_are_zero(self):
        counts = ConfusionCounts()
        assert counts.precision == 0.0
        assert counts.recall == 0.0
        assert counts.accuracy == 0.0
        assert counts.f1 == 0.0

    def test_addition(self):
        total = ConfusionCounts(tp=1) + ConfusionCounts(tn=2, fp=3)
        assert (total.tp, total.tn, total.fp, total.fn) == (1, 2, 3, 0)

    def test_table_row_keys(self):
        row = ConfusionCounts(tp=1).as_table_row()
        assert set(row) == {"TP", "TN", "FP", "FN", "precision", "recall", "accuracy"}

    def test_f1(self):
        counts = ConfusionCounts(tp=10, fp=10, fn=10)
        assert counts.f1 == pytest.approx(0.5)


class TestMarginalGrowth:
    def setup_method(self):
        self.baseline = OrgMapping(
            universe=[1, 2, 3, 4, 5], clusters=[{1, 2}, {3}]
        )
        self.weights = {1: 300, 2: 0, 3: 200, 4: 100, 5: 7}

    def weight_of(self, group):
        return float(sum(self.weights[a] for a in group))

    def test_components(self):
        components = baseline_components(
            frozenset({1, 2, 3, 4}), self.baseline.cluster_of
        )
        assert frozenset({1, 2}) in components
        assert frozenset({3}) in components
        assert frozenset({4}) in components

    def test_growth_over_largest_component(self):
        # Merged weight 600; largest prior (1,2) = 300 → growth 300.
        growth = marginal_growth(
            frozenset({1, 2, 3, 4}), self.baseline.cluster_of, self.weight_of
        )
        assert growth == 300.0

    def test_unchanged_cluster_has_zero_growth(self):
        growth = marginal_growth(
            frozenset({1, 2}), self.baseline.cluster_of, self.weight_of
        )
        assert growth == 0.0

    def test_members_growth(self):
        growth = marginal_members_growth(
            frozenset({1, 2, 3}), self.baseline.cluster_of
        )
        assert growth == 1  # 3 members minus largest component (2)
