"""Unit tests for the NER module: input filter, extraction, output filter."""

import pytest

from repro.config import BorgesConfig, LLMConfig
from repro.core.ner import NERModule
from repro.llm.simulated import make_default_client
from repro.peeringdb import Network, Organization, PDBSnapshot


def oracle_ner(config: BorgesConfig = None) -> NERModule:
    """A NER module backed by the error-free oracle (deterministic tests)."""
    llm_config = LLMConfig(extraction_error_rate=0.0, classifier_error_rate=0.0)
    return NERModule(make_default_client(llm_config), config or BorgesConfig())


def snapshot_with(nets):
    orgs = [Organization(org_id=1, name="Test Org")]
    return PDBSnapshot.build(orgs, nets)


def make_net(asn, notes="", aka=""):
    return Network(asn=asn, name=f"net-{asn}", org_id=1, notes=notes, aka=aka)


class TestInputFilter:
    def test_records_without_digits_skipped(self):
        ner = oracle_ner()
        snapshot = snapshot_with(
            [
                make_net(71001, notes="no numbers in this text"),
                make_net(71002, notes="sister network AS71003"),
            ]
        )
        results = ner.run(snapshot)
        assert [r.asn for r in results] == [71002]
        assert ner.stats.records_with_text == 2
        assert ner.stats.records_numeric == 1
        assert ner.stats.records_queried == 1

    def test_filter_disabled_queries_everything(self):
        config = BorgesConfig(ner_input_filter=False)
        ner = oracle_ner(config)
        snapshot = snapshot_with(
            [
                make_net(71001, notes="no numbers in this text"),
                make_net(71002, notes="sister network AS71003"),
            ]
        )
        results = ner.run(snapshot)
        assert len(results) == 2
        assert ner.stats.records_queried == 2

    def test_empty_text_never_queried(self):
        ner = oracle_ner(BorgesConfig(ner_input_filter=False))
        snapshot = snapshot_with([make_net(71001)])
        assert ner.run(snapshot) == []


class TestExtraction:
    def test_sibling_extracted(self):
        ner = oracle_ner()
        result = ner.extract_record(
            make_net(3320, notes="Our sibling networks: AS6855 and AS5391.")
        )
        assert result.siblings == (5391, 6855)
        assert result.cluster == frozenset({3320, 5391, 6855})

    def test_upstream_listing_yields_nothing(self):
        ner = oracle_ner()
        result = ner.extract_record(
            make_net(
                262287,
                notes=(
                    "We connect directly with the following ISPs,\n"
                    "- Algar (AS16735)\n- Cogent (AS174)"
                ),
            )
        )
        assert result.siblings == ()

    def test_aka_extraction(self):
        ner = oracle_ner()
        result = ner.extract_record(make_net(22822, aka="formerly AS15133"))
        assert result.siblings == (15133,)


class TestOutputFilter:
    def test_own_asn_always_dropped(self):
        ner = oracle_ner()
        result = ner.extract_record(
            make_net(3320, notes="part of the group with AS3320 and AS6855")
        )
        assert 3320 not in result.siblings

    def test_number_not_in_text_dropped(self):
        # Force the backend to hallucinate by injecting at rate 1.0 —
        # the output filter only admits literal numbers, so hallucinated
        # values (never in the text) cannot appear... the decoy slip picks
        # literal numbers, so instead verify the filter logic directly.
        ner = oracle_ner()
        net = make_net(1, notes="sibling AS71005")
        kept, dropped = ner._output_filter(net, [71005, 99999])
        assert kept == {71005}
        assert 99999 in dropped

    def test_invalid_asn_dropped(self):
        ner = oracle_ner()
        net = make_net(1, notes="values 23456 and 71005 with sibling AS71005")
        kept, dropped = ner._output_filter(net, [23456, 71005])
        assert kept == {71005}
        assert 23456 in dropped

    def test_filter_disabled_admits_nonliteral(self):
        config = BorgesConfig(ner_output_filter=False)
        ner = oracle_ner(config)
        net = make_net(1, notes="sibling AS71005")
        kept, _dropped = ner._output_filter(net, [71005, 88888])
        assert kept == {71005, 88888}


class TestClustersAndStats:
    def test_clusters_only_for_found_siblings(self):
        ner = oracle_ner()
        snapshot = snapshot_with(
            [
                make_net(71001, notes="sister network AS71003"),
                make_net(71002, notes="founded in 1998"),
            ]
        )
        results = ner.run(snapshot)
        clusters = ner.clusters(results)
        assert clusters == [frozenset({71001, 71003})]
        assert ner.stats.records_with_siblings == 1
        assert ner.stats.asns_extracted == 1

    def test_run_over_universe_snapshot(self, universe):
        ner = oracle_ner()
        results = ner.run(universe.pdb)
        assert results
        stats = universe.pdb.stats()
        assert ner.stats.records_queried == stats["nets_with_numeric_text"]
