"""Mergers, acquisitions, rebrandings — the dynamics of Figure 1.

The generator applies these events to the ground truth *before*
exporting registry views, so the exports show the inconsistencies the
paper motivates: an acquired brand keeps its own WHOIS org, its old
website starts redirecting to the acquirer, PeeringDB may or may not be
updated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List


class EventKind(enum.Enum):
    """What happened between two organizations/brands."""

    ACQUISITION = "acquisition"   # org A absorbs org B (B becomes brand of A)
    MERGER = "merger"             # symmetric combination; survivor keeps id
    REBRAND = "rebrand"           # brand changes name/domain, old one redirects
    SPINOFF = "spinoff"           # brand leaves org and becomes its own org


@dataclass(frozen=True)
class MnAEvent:
    """One corporate event, in timeline order.

    ``year`` orders multi-step histories (the Level3 → CenturyLink →
    Lumen chain); redirect chains follow the order of events, so a brand
    acquired twice redirects through its intermediate owner.
    """

    kind: EventKind
    year: int
    #: Acquirer / surviving org id.
    subject_org: str
    #: Acquired org id (ACQUISITION/MERGER) or brand id (REBRAND/SPINOFF).
    object_id: str
    #: New name after a REBRAND; empty otherwise.
    new_name: str = ""

    def describe(self) -> str:
        if self.kind is EventKind.ACQUISITION:
            return f"{self.year}: {self.subject_org} acquires {self.object_id}"
        if self.kind is EventKind.MERGER:
            return f"{self.year}: {self.subject_org} merges with {self.object_id}"
        if self.kind is EventKind.REBRAND:
            return (
                f"{self.year}: {self.object_id} rebrands as "
                f"{self.new_name or '?'} under {self.subject_org}"
            )
        return f"{self.year}: {self.subject_org} spins off {self.object_id}"


@dataclass
class Timeline:
    """An ordered corporate history for the whole universe."""

    events: List[MnAEvent]

    def __iter__(self):
        return iter(sorted(self.events, key=lambda e: (e.year, e.subject_org)))

    def __len__(self) -> int:
        return len(self.events)

    def involving(self, org_id: str) -> List[MnAEvent]:
        return [
            e for e in self
            if e.subject_org == org_id or e.object_id == org_id
        ]

    def acquisitions_into(self, org_id: str) -> List[MnAEvent]:
        return [
            e for e in self
            if e.subject_org == org_id
            and e.kind in (EventKind.ACQUISITION, EventKind.MERGER)
        ]
