"""SLO engine: rolling-window objectives, burn-rate alerts, exemplars.

The serve tier's "are we OK right now?" answer, in three parts:

* :class:`SLOTracker` — availability ("what fraction of requests got a
  real answer?") and latency ("what fraction finished under the
  threshold?") objectives, each measured over a **fast** (default 5 min)
  and a **slow** (default 1 h) rolling window.  The alerting signal is
  the *burn rate*: ``(bad fraction) / (1 − objective)`` — a burn rate of
  1.0 spends the error budget exactly at the sustainable pace, 14.4
  spends a 30-day budget in ~2 days.  An alert **fires** when *both*
  windows burn at or above the threshold (the slow window proves the
  problem is real, the fast window proves it is current) and **clears**
  when the fast window drops back below it — the standard multi-window
  construction, which pages fast on real incidents and un-pages fast
  after recovery without flapping on blips.
* :class:`ExemplarStore` — a bounded ring of slow-request exemplars:
  when a request finishes over the threshold, its trace ID, endpoint,
  status and full span tree are retained, so "the p99 got worse" comes
  with concrete requests to look at (``GET /v1/admin/exemplars``).
* :class:`RuntimeSampler` — a background thread sampling process gauges
  (RSS, thread count, GC collections, admission-queue occupancy) into
  the metrics registry, because "the SLO degraded" usually correlates
  with one of them.

Everything takes an explicit ``now`` so tests drive window boundaries
without sleeping, and every hot-path operation (``record``) is a lock
acquire plus a handful of integer writes.
"""

from __future__ import annotations

import gc
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigError
from .registry import MetricsRegistry, get_registry

#: Default burn-rate threshold: a 30-day error budget consumed in ~2 days.
DEFAULT_BURN_RATE_THRESHOLD = 14.4

#: Default slow-request threshold for exemplar capture (seconds).
DEFAULT_EXEMPLAR_THRESHOLD = 0.050


@dataclass(frozen=True)
class SLOConfig:
    """Objectives and window sizing for one service's SLOs."""

    #: Fraction of requests that must receive a real answer (2xx/404).
    availability_objective: float = 0.999
    #: Fraction of requests that must finish under ``latency_threshold``.
    latency_objective: float = 0.99
    #: Seconds; a request slower than this counts against the latency SLO.
    latency_threshold: float = 0.100
    fast_window_seconds: float = 300.0
    slow_window_seconds: float = 3600.0
    burn_rate_threshold: float = DEFAULT_BURN_RATE_THRESHOLD

    def validate(self) -> "SLOConfig":
        for name in ("availability_objective", "latency_objective"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ConfigError(f"{name} must be in (0, 1): {value}")
        if self.latency_threshold <= 0:
            raise ConfigError(
                f"latency_threshold must be positive: {self.latency_threshold}"
            )
        if self.fast_window_seconds <= 0 or self.slow_window_seconds <= 0:
            raise ConfigError("SLO windows must be positive")
        if self.fast_window_seconds > self.slow_window_seconds:
            raise ConfigError(
                "fast window must not exceed the slow window: "
                f"{self.fast_window_seconds} > {self.slow_window_seconds}"
            )
        if self.burn_rate_threshold <= 0:
            raise ConfigError(
                f"burn_rate_threshold must be positive: "
                f"{self.burn_rate_threshold}"
            )
        return self


class _RollingWindow:
    """Fixed-span rolling counts over a ring of time buckets.

    The ring holds ``buckets`` slots of ``seconds / buckets`` each; a
    slot is lazily zeroed when its wall-clock bucket index moves on, so
    there is no timer thread and an idle window decays to empty for
    free.  Not thread-safe on its own — the tracker's lock guards it.
    """

    __slots__ = (
        "span",
        "buckets",
        "_ids",
        "_total",
        "_bad",
        "_slow",
        "_cached_id",
        "_cached_index",
    )

    def __init__(self, seconds: float, buckets: int = 60) -> None:
        self.buckets = max(1, int(buckets))
        self.span = float(seconds) / self.buckets
        self._ids: List[int] = [-1] * self.buckets
        self._total = [0] * self.buckets
        self._bad = [0] * self.buckets
        self._slow = [0] * self.buckets
        # Consecutive requests nearly always land in the same bucket, so
        # the slot lookup is cached and revalidated by bucket id.
        self._cached_id = -1
        self._cached_index = 0

    def record(self, now: float, ok: bool, slow: bool) -> None:
        # Hot path: called once per served request (under the tracker's
        # lock), so the slot logic is inlined rather than factored out.
        bucket_id = int(now / self.span)
        if bucket_id != self._cached_id:
            index = bucket_id % self.buckets
            self._cached_id = bucket_id
            self._cached_index = index
            if self._ids[index] != bucket_id:
                self._ids[index] = bucket_id
                self._total[index] = 1
                self._bad[index] = 0 if ok else 1
                self._slow[index] = 1 if slow else 0
                return
        else:
            index = self._cached_index
        self._total[index] += 1
        if not ok:
            self._bad[index] += 1
        if slow:
            self._slow[index] += 1

    def totals(self, now: float) -> Dict[str, int]:
        """``{"total", "bad", "slow"}`` over the live part of the window."""
        current = int(now / self.span)
        oldest = current - self.buckets + 1
        total = bad = slow = 0
        for index in range(self.buckets):
            bucket_id = self._ids[index]
            if oldest <= bucket_id <= current:
                total += self._total[index]
                bad += self._bad[index]
                slow += self._slow[index]
        return {"total": total, "bad": bad, "slow": slow}


class _AlertState:
    """Firing/clear latch for one objective."""

    __slots__ = ("name", "firing", "since", "transitions")

    def __init__(self, name: str) -> None:
        self.name = name
        self.firing = False
        self.since = 0.0
        self.transitions = 0

    def update(self, fire: bool, clear: bool, now: float) -> None:
        if not self.firing and fire:
            self.firing = True
            self.since = now
            self.transitions += 1
        elif self.firing and clear:
            self.firing = False
            self.since = now
            self.transitions += 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "state": "firing" if self.firing else "clear",
            "since": round(self.since, 3),
            "transitions": self.transitions,
        }


class SLOTracker:
    """Feed request outcomes in; read burn rates and alert states out."""

    def __init__(
        self,
        config: Optional[SLOConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = (config or SLOConfig()).validate()
        self._registry = registry or get_registry()
        self._lock = threading.Lock()
        #: Cached for the per-request hot path in :meth:`record`.
        self._latency_threshold = self.config.latency_threshold
        self._fast = _RollingWindow(self.config.fast_window_seconds)
        self._slow = _RollingWindow(self.config.slow_window_seconds)
        self._alerts = {
            "availability": _AlertState("availability"),
            "latency": _AlertState("latency"),
        }
        # Cumulative tallies are plain ints bumped under the lock; the
        # Prometheus counters are synced from them at snapshot time so
        # the per-request path pays integer adds, not three method calls.
        self._n_total = 0
        self._n_bad = 0
        self._n_slow = 0
        self._total = self._registry.counter(
            "slo_requests_total", "Requests observed by the SLO tracker"
        )
        self._bad = self._registry.counter(
            "slo_errors_total", "Requests counted against availability"
        )
        self._slow_counter = self._registry.counter(
            "slo_slow_requests_total",
            "Requests over the latency threshold",
        )
        self._burn_gauges = {
            (slo, window): self._registry.gauge(
                "slo_burn_rate",
                "Error-budget burn rate per objective and window",
                slo=slo,
                window=window,
            )
            for slo in ("availability", "latency")
            for window in ("fast", "slow")
        }
        self._firing_gauges = {
            slo: self._registry.gauge(
                "slo_alert_firing",
                "1 while the objective's burn-rate alert is firing",
                slo=slo,
            )
            for slo in ("availability", "latency")
        }

    # -- recording ---------------------------------------------------------

    def record(
        self, ok: bool, latency: float, now: Optional[float] = None
    ) -> None:
        """One finished request: did it succeed, and how long did it take.

        ``ok`` means "the client got a real answer" — a 404 is ok, a
        shed/deadline/5xx outcome is not.
        """
        if now is None:
            now = time.time()
        slow = latency > self._latency_threshold
        # acquire/release instead of ``with``: the context-manager
        # protocol costs more than the guarded integer writes.
        self._lock.acquire()
        try:
            self._fast.record(now, ok, slow)
            self._slow.record(now, ok, slow)
            self._n_total += 1
            if not ok:
                self._n_bad += 1
            if slow:
                self._n_slow += 1
        finally:
            self._lock.release()

    # -- evaluation --------------------------------------------------------

    @staticmethod
    def _burn(bad: int, total: int, objective: float) -> float:
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - objective)

    def snapshot(self, now: Optional[float] = None) -> Dict[str, object]:
        """Evaluate both objectives, update alert latches, report it all.

        Called by ``/healthz``, ``/v1/admin/slo`` and the run manifest;
        alert state only advances when somebody evaluates, which is fine
        — an alert nobody reads doesn't need to transition on time.
        """
        if now is None:
            now = time.time()
        with self._lock:
            fast = self._fast.totals(now)
            slow = self._slow.totals(now)
            # Sync the cumulative Prometheus counters (see record()).
            self._total.value = float(self._n_total)
            self._bad.value = float(self._n_bad)
            self._slow_counter.value = float(self._n_slow)
        config = self.config
        out: Dict[str, object] = {
            "config": {
                "availability_objective": config.availability_objective,
                "latency_objective": config.latency_objective,
                "latency_threshold_ms": round(
                    config.latency_threshold * 1e3, 3
                ),
                "fast_window_seconds": config.fast_window_seconds,
                "slow_window_seconds": config.slow_window_seconds,
                "burn_rate_threshold": config.burn_rate_threshold,
            }
        }
        for slo, key, objective in (
            ("availability", "bad", config.availability_objective),
            ("latency", "slow", config.latency_objective),
        ):
            windows: Dict[str, object] = {}
            burns: Dict[str, float] = {}
            for window_name, totals in (("fast", fast), ("slow", slow)):
                burn = self._burn(totals[key], totals["total"], objective)
                burns[window_name] = burn
                ratio = (
                    totals[key] / totals["total"] if totals["total"] else 0.0
                )
                windows[window_name] = {
                    "total": totals["total"],
                    "bad": totals[key],
                    "ratio": round(ratio, 6),
                    "good_fraction": round(1.0 - ratio, 6),
                    "burn_rate": round(burn, 3),
                }
                self._burn_gauges[(slo, window_name)].set(burn)
            alert = self._alerts[slo]
            threshold = config.burn_rate_threshold
            alert.update(
                fire=(
                    burns["fast"] >= threshold and burns["slow"] >= threshold
                ),
                clear=burns["fast"] < threshold,
                now=now,
            )
            self._firing_gauges[slo].set(1.0 if alert.firing else 0.0)
            out[slo] = {
                "objective": objective,
                "windows": windows,
                "alert": alert.to_dict(),
            }
        out["any_alert_firing"] = any(
            alert.firing for alert in self._alerts.values()
        )
        return out

    def alerts(self, now: Optional[float] = None) -> Dict[str, str]:
        """``{objective: "firing"|"clear"}`` — the ``/healthz`` summary."""
        snapshot = self.snapshot(now)
        return {
            slo: snapshot[slo]["alert"]["state"]  # type: ignore[index]
            for slo in ("availability", "latency")
        }


class ExemplarStore:
    """Bounded ring of slow-request exemplars with their span trees."""

    def __init__(
        self,
        threshold: float = DEFAULT_EXEMPLAR_THRESHOLD,
        capacity: int = 64,
    ) -> None:
        if threshold < 0:
            raise ConfigError(f"exemplar threshold must be >= 0: {threshold}")
        if capacity < 1:
            raise ConfigError(f"exemplar capacity must be >= 1: {capacity}")
        self.threshold = threshold
        self._ring: "List[Dict[str, object]]" = []
        self._capacity = capacity
        self._lock = threading.Lock()
        self.offered = 0
        self.kept = 0

    def offer(
        self,
        *,
        endpoint: str,
        status: int,
        latency: float,
        trace_id: str = "",
        spans: Optional[List[Dict[str, object]]] = None,
        now: Optional[float] = None,
    ) -> bool:
        """Keep the request if it crossed the threshold; True when kept."""
        self.offered += 1
        if latency < self.threshold:
            return False
        entry: Dict[str, object] = {
            "ts": round(now if now is not None else time.time(), 6),
            "endpoint": endpoint,
            "status": status,
            "latency_ms": round(latency * 1e3, 3),
            "trace_id": trace_id,
        }
        if spans:
            entry["spans"] = spans
        with self._lock:
            self._ring.append(entry)
            if len(self._ring) > self._capacity:
                del self._ring[: len(self._ring) - self._capacity]
            self.kept += 1
        return True

    def exemplars(self) -> List[Dict[str, object]]:
        with self._lock:
            return [dict(entry) for entry in self._ring]

    def stats(self) -> Dict[str, object]:
        with self._lock:
            retained = len(self._ring)
        return {
            "threshold_ms": round(self.threshold * 1e3, 3),
            "capacity": self._capacity,
            "retained": retained,
            "offered": self.offered,
            "kept": self.kept,
        }


def _process_rss_bytes() -> int:
    """Resident set size, best-effort across platforms (0 if unknown)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; normalise the obvious case.
        return rss * 1024 if rss < 1 << 32 else rss
    except (ImportError, ValueError, OSError):
        return 0


class RuntimeSampler:
    """Background gauge sampler: RSS, threads, GC, queue occupancy."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        interval: float = 5.0,
        admission=None,
    ) -> None:
        if interval <= 0:
            raise ConfigError(f"sampler interval must be positive: {interval}")
        self._registry = registry or get_registry()
        self.interval = interval
        self._admission = admission
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.samples = 0

    def sample_once(self) -> Dict[str, float]:
        """Take one sample, set the gauges, return the values."""
        registry = self._registry
        values: Dict[str, float] = {
            "rss_bytes": float(_process_rss_bytes()),
            "threads": float(threading.active_count()),
        }
        registry.gauge(
            "process_resident_memory_bytes", "Resident set size"
        ).set(values["rss_bytes"])
        registry.gauge(
            "process_threads", "Live Python threads"
        ).set(values["threads"])
        for generation, stats in enumerate(gc.get_stats()):
            collections = float(stats.get("collections", 0))
            values[f"gc_gen{generation}_collections"] = collections
            registry.gauge(
                "python_gc_collections",
                "GC collections per generation",
                generation=generation,
            ).set(collections)
        if self._admission is not None:
            occupancy = self._admission.occupancy()
            limits = self._admission.limits
            queue_frac = (
                occupancy["queued"] / limits.max_queue
                if limits.max_queue
                else 0.0
            )
            inflight_frac = occupancy["inflight"] / limits.max_inflight
            values["queue_occupancy"] = queue_frac
            values["inflight_occupancy"] = inflight_frac
            registry.gauge(
                "serve_admission_queue_occupancy",
                "Queued requests as a fraction of max_queue",
            ).set(queue_frac)
            registry.gauge(
                "serve_admission_inflight_occupancy",
                "In-flight requests as a fraction of max_inflight",
            ).set(inflight_frac)
        self.samples += 1
        return values

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def start(self) -> "RuntimeSampler":
        if self._thread is not None:
            return self
        self.sample_once()  # gauges are live from the first instant
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="borges-runtime-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "RuntimeSampler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
