"""Table 3: the individual contribution of each Borges feature.

For every feature — OID_P, OID_W, notes & aka, R&R, favicons — count how
many ASNs the feature says anything about and how many organizations it
forms on its own (after consolidating overlaps within the feature).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.pipeline import BorgesResult

#: Table 3's row order and display labels.
ROW_ORDER = (
    ("oid_p", "OID_P"),
    ("oid_w", "OID_W"),
    ("notes_aka", "notes and aka"),
    ("rr", "R&R"),
    ("favicons", "Favicons"),
)


def feature_contribution_table(result: BorgesResult) -> List[Dict[str, object]]:
    """Rows of Table 3 from one pipeline run."""
    rows: List[Dict[str, object]] = []
    for key, label in ROW_ORDER:
        feature = result.features.get(key)
        if feature is None:
            continue
        rows.append(
            {
                "source": label,
                "asns": feature.asn_count,
                "orgs": feature.org_count,
            }
        )
    return rows
