"""The universe generator: ground truth plus every exported view.

Given a :class:`~repro.config.UniverseConfig`, :func:`generate_universe`
builds one deterministic synthetic Internet:

1. ground truth — canonical paper scenarios + randomly drawn
   organizations (singletons, conglomerates, a few government-style
   many-ASN registrants) with an M&A timeline;
2. the WHOIS dataset, fragmenting conglomerates into legal entities;
3. the PeeringDB snapshot, with operator-written notes/aka/websites;
4. the simulated web, with post-merger redirect chains and favicons;
5. APNIC-style populations and an AS topology for AS-Rank;
6. annotations: the truth needed to score extraction/classification.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..apnic import ApnicDataset, PopulationRecord
from ..asrank import ASRank, ASTopology, compute_rank
from ..config import UniverseConfig
from ..logutil import get_logger
from ..peeringdb import Network, Organization, PDBSnapshot
from ..types import ASN
from ..web.simweb import (
    FRAMEWORK_FAVICON_BRANDS,
    SimulatedWeb,
    Site,
    is_framework_favicon_brand,
    make_favicon,
)
from ..whois import ASNDelegation, WhoisDataset, WhoisOrg
from .canonical import CanonicalPlan, build_canonical_plan
from .entities import Brand, GroundTruth, Org, OrgCategory
from .events import EventKind, MnAEvent, Timeline
from .names import NameForge
from .notes_synth import NotesSynthesizer
from .web_synth import build_web

_LOG = get_logger("universe.generator")

#: Synthetic ASNs are allocated upward from here; canonical scenario ASNs
#: all sit below (see :mod:`repro.universe.canonical`).
SYNTHETIC_ASN_BASE = 100_001

_RIR_BY_REGION = {
    "northam": "arin",
    "latam": "lacnic",
    "caribbean": "lacnic",
    "europe": "ripencc",
    "apac": "apnic",
    "africa": "afrinic",
    "mideast": "ripencc",
}

_CATEGORY_WEIGHTS = (
    (OrgCategory.ACCESS, 0.40),
    (OrgCategory.ENTERPRISE, 0.35),
    (OrgCategory.TRANSIT, 0.15),
    (OrgCategory.CONTENT, 0.10),
)

#: Brand ASN-count distribution (heavy-tailed; mirrors WHOIS org sizes,
#: whose mean in the paper's snapshot is 1.23 ASNs per organization).
_BRAND_SIZE_TABLE = (
    (1, 0.890), (2, 0.070), (3, 0.020), (4, 0.008), (5, 0.005),
    (8, 0.003), (12, 0.002), (20, 0.001), (40, 0.0005),
)


@dataclass
class Annotations:
    """Ground truth for the validation tables (Tables 4–5)."""

    #: PDB net ASN → sibling ASNs truly embedded in its notes+aka text.
    notes_truth: Dict[ASN, Tuple[ASN, ...]] = field(default_factory=dict)
    #: favicon brand token → is it a real company's logo (vs framework)?
    favicon_company: Dict[str, bool] = field(default_factory=dict)


@dataclass
class Universe:
    """One complete synthetic Internet with all exported views."""

    config: UniverseConfig
    ground_truth: GroundTruth
    timeline: Timeline
    whois: WhoisDataset
    pdb: PDBSnapshot
    web: SimulatedWeb
    apnic: ApnicDataset
    topology: ASTopology
    annotations: Annotations
    _rank: Optional[ASRank] = None

    @property
    def asrank(self) -> ASRank:
        """The AS-Rank table (computed lazily, cached)."""
        if self._rank is None:
            self._rank = compute_rank(self.topology)
        return self._rank

    def summary(self) -> Dict[str, float]:
        stats: Dict[str, float] = {}
        stats.update({f"gt_{k}": v for k, v in self.ground_truth.stats().items()})
        stats.update({f"whois_{k}": v for k, v in self.whois.stats().items()})
        stats.update(
            {f"pdb_{k}": float(v) for k, v in self.pdb.stats().items()}
        )
        stats.update({f"web_{k}": float(v) for k, v in self.web.stats().items()})
        stats["apnic_total_users"] = float(self.apnic.total_users)
        stats["topology_asns"] = float(len(self.topology))
        return stats


class UniverseGenerator:
    """Deterministic builder; every random draw hangs off ``config.seed``."""

    def __init__(self, config: Optional[UniverseConfig] = None) -> None:
        self._config = (config or UniverseConfig()).validate()
        seed = self._config.seed
        self._rng = random.Random(("universe", seed).__repr__())
        self._forge = NameForge(seed)
        self._notes = NotesSynthesizer(seed)
        self._asn_counter = itertools.count(SYNTHETIC_ASN_BASE)
        #: Canonical scenarios hold fixed real-world ASNs (some above the
        #: synthetic base, e.g. Maxihost's AS262287); never re-allocate them.
        self._reserved_asns = frozenset(build_canonical_plan().all_asns())

    def generate(self) -> Universe:
        config = self._config
        plan = build_canonical_plan()
        ground_truth, timeline = self._build_ground_truth(plan)
        whois = self._export_whois(ground_truth, plan)
        web = self._build_web(ground_truth, timeline, plan)
        pdb, annotations = self._export_pdb(ground_truth, plan, whois)
        self._annotate_favicons(ground_truth, annotations)
        apnic = self._populations(ground_truth)
        topology = self._topology(ground_truth, whois)
        universe = Universe(
            config=config,
            ground_truth=ground_truth,
            timeline=timeline,
            whois=whois,
            pdb=pdb,
            web=web,
            apnic=apnic,
            topology=topology,
            annotations=annotations,
        )
        _LOG.info(
            "universe generated: %d orgs, %d ASNs, %d PDB nets, %d sites",
            len(ground_truth), len(whois), len(pdb), len(web),
        )
        return universe

    # -- ground truth ----------------------------------------------------

    def _build_ground_truth(
        self, plan: CanonicalPlan
    ) -> Tuple[GroundTruth, Timeline]:
        ground_truth = GroundTruth()
        events: List[MnAEvent] = list(plan.events)
        for org in plan.orgs:
            ground_truth.add(org)
        for i in range(self._config.n_organizations):
            org = self._random_org(i)
            ground_truth.add(org)
            events.extend(self._random_events(org))
        # A couple of government-style registrants: one WHOIS org holding
        # very many ASNs (the DoD pattern that anchors AS2Org's θ).
        for g in range(2):
            ground_truth.add(self._government_org(g))
        ground_truth.invalidate_index()
        return ground_truth, Timeline(events=events)

    #: Conglomerate-probability multipliers per category: carriers grow by
    #: acquisition far more often than enterprises (the Fig. 1 dynamic).
    _CONGLOMERATE_MULTIPLIER = {
        OrgCategory.TRANSIT: 3.0,
        OrgCategory.CONTENT: 2.0,
        OrgCategory.ACCESS: 1.5,
        OrgCategory.ENTERPRISE: 0.5,
    }

    def _random_org(self, index: int) -> Org:
        rng = self._rng
        category = self._draw_category()
        name = self._forge.company_name(category.value)
        token = self._forge.brand_token(name)
        region = self._forge.pick_region()
        org_id = f"org-{index:05d}"
        conglomerate_p = min(
            0.5,
            self._config.conglomerate_fraction
            * self._CONGLOMERATE_MULTIPLIER[category],
        )
        is_conglomerate = rng.random() < conglomerate_p
        org = Org(
            org_id=org_id,
            name=name,
            category=category,
            region=region,
            is_conglomerate=is_conglomerate,
            brand_token=token,
        )
        n_brands = 1
        carrier_scale = False
        if is_conglomerate:
            carrier_scale = (
                category is OrgCategory.TRANSIT and rng.random() < 0.30
            )
            if carrier_scale:
                # Large carriers built by serial acquisition (Lumen, GTT...).
                n_brands = rng.randint(5, 12)
            else:
                mean_extra = max(0.0, self._config.mean_subsidiaries - 1.0)
                n_brands = min(2 + self._geometric(mean_extra), 26)
        countries = self._forge.pick_countries(region, n_brands)
        unified_branding = rng.random() < (0.85 if carrier_scale else 0.30)
        acquired_p = 0.75 if carrier_scale else 0.30
        for b, (country, cctld) in enumerate(countries):
            brand_name = name if b == 0 else f"{name} {country}"
            brand_token = token if (b == 0 or unified_branding) else (
                self._forge.brand_token(self._forge.company_name(category.value))
            )
            brand = Brand(
                brand_id=f"{org_id}/b{b}",
                name=brand_name,
                org_id=org_id,
                country=country,
                cctld=cctld,
                asns=self._allocate_asns(self._draw_brand_size()),
                language=self._forge.language_for(region),
                acquired=(b > 0 and rng.random() < acquired_p),
            )
            self._assign_website(org, brand, brand_token, unified_branding)
            org.brands.append(brand)
        return org

    def _government_org(self, index: int) -> Org:
        size = max(2, self._config.max_org_asns - index * 30)
        org = Org(
            org_id=f"gov-{index}",
            name=f"National Networks Agency {index}",
            category=OrgCategory.ENTERPRISE,
            region="northam" if index == 0 else "europe",
        )
        country, cctld = ("US", "com") if index == 0 else ("DE", "de")
        org.brands = [
            Brand(
                brand_id=f"gov-{index}/main",
                name=org.name,
                org_id=org.org_id,
                country=country,
                cctld=cctld,
                asns=self._allocate_asns(size),
            )
        ]
        return org

    def _random_events(self, org: Org) -> List[MnAEvent]:
        if not org.is_conglomerate:
            return []
        events = []
        year = 2006 + self._rng.randint(0, 4)
        for brand in org.brands:
            if brand.acquired:
                # Serial acquirers buy a company every year or two; cap at
                # the snapshot's present (2024).
                year = min(2024, year + self._rng.randint(1, 3))
                events.append(
                    MnAEvent(
                        kind=EventKind.ACQUISITION,
                        year=year,
                        subject_org=org.org_id,
                        object_id=brand.brand_id,
                    )
                )
        return events

    #: Anonymous hosting-template favicon families beyond the named ones;
    #: each groups a few unrelated small sites (Table 5's TN population).
    _N_TEMPLATE_FAMILIES = 36

    def _framework_brand(self) -> str:
        families = list(FRAMEWORK_FAVICON_BRANDS) + [
            f"webtemplate{k}-default" for k in range(self._N_TEMPLATE_FAMILIES)
        ]
        return self._rng.choice(families)

    def _assign_website(
        self, org: Org, brand: Brand, brand_token: str, unified: bool
    ) -> None:
        rng = self._rng
        has_site = rng.random() < (0.92 if org.is_conglomerate else 0.82)
        if not has_site:
            return
        token = org.brand_token if (unified and org.is_conglomerate) else brand_token
        host = f"www.{token}.{brand.cctld}"
        brand.website_host = host
        small = not org.is_conglomerate and len(brand.asns) <= 2
        if small and rng.random() < self._config.framework_favicon_rate:
            brand.favicon_brand = self._framework_brand()
        elif unified and org.is_conglomerate:
            # Unified branding usually means a unified logo too — the
            # same-favicon + same-token population step 1 resolves.  Some
            # subsidiaries nevertheless serve a localized icon variant,
            # which breaks the favicon link (the §5.3 DE-CIX example is
            # this divergence in the wild).
            brand.favicon_brand = (
                org.brand_token
                if rng.random() < 0.5
                else f"{org.brand_token}-{brand.country.lower()}-variant"
            )
        elif rng.random() < self._config.shared_favicon_rate:
            brand.favicon_brand = org.brand_token
        else:
            brand.favicon_brand = brand_token

    # -- WHOIS export --------------------------------------------------------

    def _export_whois(
        self, ground_truth: GroundTruth, plan: CanonicalPlan
    ) -> WhoisDataset:
        rng = self._rng
        orgs: Dict[str, WhoisOrg] = {}
        delegations: List[ASNDelegation] = []

        def whois_org_for(key: str, name: str, country: str, region: str) -> str:
            if key not in orgs:
                rir = _RIR_BY_REGION.get(region, "arin")
                handle = f"WO-{len(orgs):05d}-{rir.upper()}"
                orgs[key] = WhoisOrg(
                    org_id=handle, name=name, country=country, source=rir
                )
            return orgs[key].org_id

        for org in ground_truth.all_orgs():
            for brand in org.brands:
                key = plan.whois_group.get(brand.brand_id)
                if key is None:
                    fragmented = (
                        org.is_conglomerate
                        and rng.random() < self._config.whois_fragmentation_rate
                    )
                    key = (
                        f"W:{brand.brand_id}" if fragmented else f"W:{org.org_id}"
                    )
                display = brand.name if key.startswith("W:" + brand.brand_id) else org.name
                org_id = whois_org_for(key, display, brand.country, org.region)
                for asn in brand.asns:
                    delegations.append(
                        ASNDelegation(
                            asn=asn,
                            org_id=org_id,
                            name=brand.name,
                            source=orgs[key].source,
                        )
                    )
        return WhoisDataset.build(orgs.values(), delegations)

    # -- web export -----------------------------------------------------------

    def _build_web(
        self, ground_truth: GroundTruth, timeline: Timeline, plan: CanonicalPlan
    ) -> SimulatedWeb:
        web = build_web(ground_truth, timeline, self._config, self._config.seed)
        for extra in plan.extra_sites:
            if extra.host in web:
                continue
            site = Site(
                host=extra.host,
                title=extra.title or extra.host,
                favicon=(
                    make_favicon(extra.favicon_brand)
                    if extra.favicon_brand else b""
                ),
            )
            if extra.redirect_target:
                site.redirect_kind = extra.redirect_kind
                site.redirect_target = extra.redirect_target
            web.add_site(site)
        for host, (target, kind) in plan.redirects.items():
            site = web.site_for(f"https://{host}/")
            if site is None:
                site = web.add_site(Site(host=host, title=host))
            site.redirect_kind = kind
            site.redirect_target = target
            site.alive = True
        for host in plan.alive_hosts:
            site = web.site_for(f"https://{host}/")
            if site is not None:
                site.alive = True
        # Platform hosts (facebook & friends) that small operators point
        # their PDB website at — blocklist targets.
        from .names import PLATFORM_HOSTS

        for host in PLATFORM_HOSTS:
            if host not in web:
                web.add_site(Site(host=host, title=host, favicon=make_favicon(host)))
        return web

    # -- PeeringDB export --------------------------------------------------------

    def _export_pdb(
        self,
        ground_truth: GroundTruth,
        plan: CanonicalPlan,
        whois: WhoisDataset,
    ) -> Tuple[PDBSnapshot, Annotations]:
        rng = self._rng
        annotations = Annotations()
        pdb_orgs: Dict[str, Organization] = {}
        nets: List[Network] = []
        transit_pool = self._transit_pool(ground_truth)

        def pdb_org_for(key: str, name: str, country: str) -> int:
            if key not in pdb_orgs:
                pdb_orgs[key] = Organization(
                    org_id=len(pdb_orgs) + 1, name=name, country=country
                )
            return pdb_orgs[key].org_id

        for org in ground_truth.all_orgs():
            for brand in org.brands:
                if not self._registers_in_pdb(org, brand, plan):
                    continue
                key = plan.pdb_group.get(brand.brand_id)
                if key is None:
                    rate = self._config.pdb_consolidation_rate
                    if _is_carrier(org):
                        # Serial-acquirer carriers run one NOC and one
                        # PeeringDB org (the Lumen/CenturyLink pattern).
                        rate = 0.40
                    consolidated = (
                        org.is_conglomerate and rng.random() < rate
                    )
                    key = f"P:{org.org_id}" if consolidated else f"P:{brand.brand_id}"
                display = org.name if key == f"P:{org.org_id}" else brand.name
                org_id = pdb_org_for(key, display, brand.country)
                registered_asns = self._registered_asns(brand, plan)
                for i, asn in enumerate(registered_asns):
                    nets.append(
                        self._make_net(
                            org, brand, asn, i, org_id, plan,
                            transit_pool, annotations,
                        )
                    )
        snapshot = PDBSnapshot.build(
            orgs=pdb_orgs.values(),
            nets=nets,
            meta={
                "generated": "synthetic",
                "seed": self._config.seed,
                "source": "repro.universe",
            },
        )
        return snapshot, annotations

    def _registers_in_pdb(
        self, org: Org, brand: Brand, plan: CanonicalPlan
    ) -> bool:
        if brand.brand_id in plan.register:
            return True
        rate = self._config.pdb_registration_rate
        if org.category in (OrgCategory.TRANSIT, OrgCategory.CONTENT):
            rate = min(0.95, rate * 1.9)
        if org.is_conglomerate:
            rate = min(0.95, rate * 1.4)
        return self._rng.random() < rate

    def _registered_asns(self, brand: Brand, plan: CanonicalPlan) -> List[ASN]:
        if brand.brand_id in plan.register:
            return list(brand.asns)
        asns = [brand.primary_asn]
        for asn in brand.asns:
            if asn != brand.primary_asn and self._rng.random() < 0.7:
                asns.append(asn)
        return sorted(asns)

    def _make_net(
        self,
        org: Org,
        brand: Brand,
        asn: ASN,
        index_in_brand: int,
        pdb_org_id: int,
        plan: CanonicalPlan,
        transit_pool: Sequence[ASN],
        annotations: Annotations,
    ) -> Network:
        rng = self._rng
        name = brand.name if index_in_brand == 0 else f"{brand.name} #{index_in_brand + 1}"
        website = self._website_field(brand, plan)
        notes_text, aka_text, truth = self._text_fields(
            org, brand, asn, plan, transit_pool
        )
        if notes_text or aka_text:
            annotations.notes_truth[asn] = truth
        info_type = {
            OrgCategory.ACCESS: "Cable/DSL/ISP",
            OrgCategory.TRANSIT: "NSP",
            OrgCategory.CONTENT: "Content",
            OrgCategory.ENTERPRISE: "Enterprise",
        }[org.category]
        return Network(
            asn=asn,
            name=name,
            org_id=pdb_org_id,
            aka=aka_text,
            notes=notes_text,
            website=website,
            info_type=info_type,
        )

    def _website_field(self, brand: Brand, plan: CanonicalPlan) -> str:
        if brand.brand_id in plan.website_field:
            return plan.website_field[brand.brand_id]
        rng = self._rng
        if brand.brand_id.startswith("gt-"):
            return brand.website_url
        if rng.random() < self._config.platform_website_rate:
            from .names import PLATFORM_HOSTS

            return f"https://{rng.choice(PLATFORM_HOSTS)}/"
        if brand.website_host and rng.random() < self._config.website_rate:
            return brand.website_url
        return ""

    def _text_fields(
        self,
        org: Org,
        brand: Brand,
        asn: ASN,
        plan: CanonicalPlan,
        transit_pool: Sequence[ASN],
    ) -> Tuple[str, str, Tuple[ASN, ...]]:
        """Synthesize (notes, aka, true_siblings) for one net record."""
        rng = self._rng
        notes_text = ""
        aka_text = ""
        truth: Set[ASN] = set()

        planted_notes = plan.notes.get(asn)
        planted_aka = plan.aka.get(asn)
        if planted_notes is not None:
            notes_text = planted_notes.text
            truth.update(planted_notes.true_siblings)
        if planted_aka is not None:
            aka_text = planted_aka.text
            truth.update(planted_aka.true_siblings)
        if planted_notes is not None or planted_aka is not None:
            return notes_text, aka_text, tuple(sorted(truth))

        if rng.random() >= self._config.notes_rate:
            return "", "", ()
        other_asns = [a for a in org.asns if a != asn]
        can_report_siblings = bool(other_asns)
        # Operators with sibling networks are exactly the ones who write
        # numeric notes (the paper's Table 4 sample: ~60% of numeric
        # records carried true sibling reports).
        numeric_rate = self._config.numeric_notes_rate
        sibling_rate = self._config.sibling_notes_rate
        if can_report_siblings:
            numeric_rate = min(0.9, numeric_rate * 2.0)
            sibling_rate = 0.5
        if rng.random() >= numeric_rate:
            synthesized = self._notes.plain_notes()
            return synthesized.text, "", ()

        roll = rng.random()
        if can_report_siblings and roll < sibling_rate:
            # Operators mostly list their own brand's other ASNs (already
            # sharing a WHOIS org); cross-brand reports are the rarer,
            # informative case.
            same_brand = [a for a in brand.asns if a != asn]
            pool = same_brand if (same_brand and rng.random() < 0.7) else other_asns
            count = min(len(pool), rng.randint(1, 2))
            siblings = sorted(rng.sample(pool, count))
            upstream = (
                sorted(rng.sample(list(transit_pool), min(3, len(transit_pool))))
                if rng.random() < 0.25 and transit_pool
                else ()
            )
            synthesized = self._notes.sibling_notes(
                org_name=org.name,
                siblings=siblings,
                language=brand.language,
                with_decoys=rng.random() < 0.3,
                with_upstreams=upstream,
            )
            if rng.random() < 0.3:
                aka_synth = self._notes.aka(
                    alias=f"{org.name} {brand.country}",
                    sibling_asn=rng.choice(other_asns),
                )
                aka_text = aka_synth.text
                truth.update(aka_synth.true_siblings)
            notes_text = synthesized.text
            truth.update(synthesized.true_siblings)
        elif roll < 0.75 and transit_pool:
            count = min(len(transit_pool), rng.randint(2, 5))
            synthesized = self._notes.upstream_notes(
                upstreams=sorted(rng.sample(list(transit_pool), count)),
                language=brand.language,
            )
            notes_text = synthesized.text
        else:
            synthesized = self._notes.decoy_notes()
            notes_text = synthesized.text
        return notes_text, aka_text, tuple(sorted(truth))

    def _transit_pool(self, ground_truth: GroundTruth) -> List[ASN]:
        pool: List[ASN] = []
        for org in ground_truth.by_category(OrgCategory.TRANSIT):
            for brand in org.brands:
                pool.append(brand.primary_asn)
        return sorted(pool)

    # -- favicon annotations ---------------------------------------------------

    def _annotate_favicons(
        self, ground_truth: GroundTruth, annotations: Annotations
    ) -> None:
        for brand in ground_truth.all_brands():
            if not brand.favicon_brand:
                continue
            annotations.favicon_company[brand.favicon_brand] = (
                not is_framework_favicon_brand(brand.favicon_brand)
            )

    # -- populations -----------------------------------------------------------

    def _populations(self, ground_truth: GroundTruth) -> ApnicDataset:
        """Heavy-tailed user estimates for access networks, per country."""
        rng = self._rng
        raw: List[Tuple[ASN, str, float]] = []
        for org in ground_truth.all_orgs():
            if org.category is not OrgCategory.ACCESS:
                continue
            boost = 3.0 if org.org_id.startswith("gt-") else 1.0
            for brand in org.brands:
                base = rng.paretovariate(1.16) * 1_000.0 * boost
                if org.is_conglomerate:
                    base *= 2.5
                weights = [rng.random() + 0.2 for _ in brand.asns]
                total_weight = sum(weights)
                for asn, weight in zip(brand.asns, weights):
                    raw.append((asn, brand.country, base * weight / total_weight))
        total_raw = sum(v for _, _, v in raw) or 1.0
        scale = self._config.total_users / total_raw
        dataset = ApnicDataset()
        for asn, country, value in raw:
            users = int(value * scale)
            if users > 0:
                dataset.add(
                    PopulationRecord(asn=asn, country=country, users=users)
                )
        return dataset

    # -- topology ----------------------------------------------------------------

    def _topology(
        self, ground_truth: GroundTruth, whois: WhoisDataset
    ) -> ASTopology:
        """A provider hierarchy: tier-1 transit → tier-2 transit → stubs."""
        rng = self._rng
        topology = ASTopology()
        # Tier 1 is the carrier clique: the conglomerates built by serial
        # acquisition sit at the top of AS-Rank in the real Internet
        # (Lumen, GTT, Zayo...), ahead of large single-entity registrants.
        transit_orgs = sorted(
            ground_truth.by_category(OrgCategory.TRANSIT),
            key=lambda o: (-int(_is_carrier(o)), -int(o.is_conglomerate), -o.size),
        )
        tier1: List[ASN] = []
        tier2: List[ASN] = []
        for i, org in enumerate(transit_orgs):
            if i < 10:
                # One clique member per organization: the flagship's
                # primary ASN (real tier-1 cliques are a dozen comparable
                # giants, not every subsidiary of every carrier).
                flagship_asn = org.brands[0].primary_asn
                tier1.append(flagship_asn)
                tier2.extend(a for a in org.asns if a != flagship_asn)
            else:
                for brand in org.brands:
                    tier2.extend(brand.asns)
        tier1 = sorted(set(tier1))
        tier2 = sorted(set(tier2) - set(tier1))
        if not tier1:
            tier1 = [whois.asns()[0]]
        for asn in tier1:
            topology.add_asn(asn)
        for a, b in itertools.combinations(tier1, 2):
            topology.add_p2p(a, b)
        for asn in tier2:
            for provider in rng.sample(tier1, min(len(tier1), rng.randint(2, 3))):
                topology.add_p2c(provider, asn)
        transit_set = set(tier1) | set(tier2)
        providers_pool = tier2 or tier1
        for asn in whois.asns():
            if asn in transit_set:
                continue
            n_providers = rng.randint(1, 3)
            if rng.random() < 0.1 and tier1:
                topology.add_p2c(rng.choice(tier1), asn)
                n_providers -= 1
            for provider in rng.sample(
                providers_pool, min(len(providers_pool), max(1, n_providers))
            ):
                topology.add_p2c(provider, asn)
        return topology

    # -- small draws -------------------------------------------------------------

    def _draw_category(self) -> OrgCategory:
        roll = self._rng.random()
        acc = 0.0
        for category, weight in _CATEGORY_WEIGHTS:
            acc += weight
            if roll < acc:
                return category
        return OrgCategory.ENTERPRISE

    def _draw_brand_size(self) -> int:
        roll = self._rng.random()
        acc = 0.0
        for size, weight in _BRAND_SIZE_TABLE:
            acc += weight
            if roll < acc:
                return size
        return self._rng.randint(40, self._config.max_org_asns)

    def _geometric(self, mean: float) -> int:
        """Geometric draw with the given mean (0 when mean is 0)."""
        if mean <= 0:
            return 0
        p = 1.0 / (1.0 + mean)
        count = 0
        while self._rng.random() > p and count < 60:
            count += 1
        return count

    def _allocate_asns(self, count: int) -> List[ASN]:
        allocated: List[ASN] = []
        while len(allocated) < count:
            asn = next(self._asn_counter)
            if asn not in self._reserved_asns:
                allocated.append(asn)
        return allocated


def _is_carrier(org: Org) -> bool:
    """A serial-acquirer transit carrier (many branded subsidiaries)."""
    return (
        org.category is OrgCategory.TRANSIT
        and org.is_conglomerate
        and len(org.brands) >= 5
    )


def generate_universe(config: Optional[UniverseConfig] = None) -> Universe:
    """Build one deterministic universe from *config* (or defaults)."""
    return UniverseGenerator(config).generate()
