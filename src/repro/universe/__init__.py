"""Synthetic-Internet universe: the offline stand-in for the paper's inputs.

The generator builds a ground-truth world of organizations (singletons
and multinational conglomerates with branded subsidiaries), applies an
M&A history, and *exports* the imperfect views real systems see:

* a WHOIS dataset where conglomerates fragment into legal entities,
* a PeeringDB snapshot with operator-written notes/aka/website fields,
* a simulated web with post-merger redirect chains and favicons,
* APNIC-style user populations and an AS topology for AS-Rank.

Crucially, it also keeps the *truth* (``GroundTruth`` + ``Annotations``)
so validation tables can be computed the way the paper computed them by
manual inspection.
"""

from .entities import Brand, GroundTruth, Org, OrgCategory
from .events import EventKind, MnAEvent
from .export_stream import export_universe_streaming
from .generator import Universe, UniverseGenerator, generate_universe

__all__ = [
    "export_universe_streaming",
    "Brand",
    "GroundTruth",
    "Org",
    "OrgCategory",
    "EventKind",
    "MnAEvent",
    "Universe",
    "UniverseGenerator",
    "generate_universe",
]
