"""Unit tests for the AS2Org and as2org+ baselines, incl. regex extraction."""

import pytest

from repro.asrank import ASTopology
from repro.baselines import (
    As2OrgPlusConfig,
    build_as2org_mapping,
    build_as2orgplus_mapping,
    regex_extract_asns,
)
from repro.baselines.regex_extract import filter_provider_relations
from repro.peeringdb import Network, Organization, PDBSnapshot
from repro.whois import ASNDelegation, WhoisDataset, WhoisOrg


def mini_whois():
    orgs = [
        WhoisOrg(org_id="A-ARIN", name="Alpha"),
        WhoisOrg(org_id="B-ARIN", name="Beta"),
        WhoisOrg(org_id="C-ARIN", name="Gamma"),
    ]
    delegations = [
        ASNDelegation(asn=10, org_id="A-ARIN"),
        ASNDelegation(asn=11, org_id="A-ARIN"),
        ASNDelegation(asn=20, org_id="B-ARIN"),
        ASNDelegation(asn=30, org_id="C-ARIN"),
    ]
    return WhoisDataset.build(orgs, delegations)


def mini_pdb():
    orgs = [Organization(org_id=1, name="AlphaBeta Ops")]
    nets = [
        Network(asn=10, name="Alpha", org_id=1),
        Network(asn=20, name="Beta", org_id=1,
                notes="Phone +1 555 0100, upstream AS30"),
    ]
    return PDBSnapshot.build(orgs, nets)


class TestAS2Org:
    def test_mapping_follows_whois(self):
        mapping = build_as2org_mapping(mini_whois())
        assert mapping.are_siblings(10, 11)
        assert not mapping.are_siblings(10, 20)
        assert mapping.method == "as2org"

    def test_org_names_carried(self):
        mapping = build_as2org_mapping(mini_whois())
        assert mapping.org_name_of(10) == "Alpha"


class TestAs2OrgPlus:
    def test_simple_setup_merges_pdb_orgs(self):
        # The paper's benchmark configuration: OID_W + OID_P only.
        mapping = build_as2orgplus_mapping(mini_whois(), mini_pdb())
        assert mapping.are_siblings(10, 20)  # shared PDB org
        assert mapping.are_siblings(10, 11)  # WHOIS group kept
        assert not mapping.are_siblings(10, 30)
        assert mapping.method == "as2org+"

    def test_regex_setup_drags_in_upstreams(self):
        # Without the provider filter, the regexes read AS30 from the
        # notes as a sibling — the false-positive mode §2.1 describes.
        config = As2OrgPlusConfig(use_regex_extraction=True, provider_filter=False)
        mapping = build_as2orgplus_mapping(mini_whois(), mini_pdb(), config)
        assert mapping.are_siblings(20, 30)
        assert mapping.method == "as2org+[regex]"

    def test_provider_filter_removes_upstreams(self):
        topology = ASTopology()
        topology.add_p2c(30, 20)  # AS30 is AS20's provider
        config = As2OrgPlusConfig(use_regex_extraction=True, provider_filter=True)
        mapping = build_as2orgplus_mapping(
            mini_whois(), mini_pdb(), config, topology
        )
        assert not mapping.are_siblings(20, 30)


class TestRegexExtraction:
    def test_as_prefixed_tokens(self):
        assert regex_extract_asns("siblings AS3356 and ASN 209") == [209, 3356]

    def test_loose_mode_matches_bare_numbers(self):
        found = regex_extract_asns("established 1998, suite 200", loose=True)
        assert 1998 in found
        assert 200 in found

    def test_strict_mode_ignores_bare_numbers(self):
        assert regex_extract_asns("established 1998", loose=False) == []

    def test_own_asn_excluded(self):
        assert regex_extract_asns("we are AS5", own_asn=5) == []

    def test_no_context_awareness(self):
        # The defining weakness vs the LLM: upstream lists look identical.
        upstream_notes = "We connect directly with Cogent (AS174)"
        assert regex_extract_asns(upstream_notes) == [174]

    def test_reserved_asns_excluded(self):
        assert regex_extract_asns("AS23456 AS64512", loose=False) == []

    def test_out_of_range_bare_numbers_excluded(self):
        assert regex_extract_asns("ticket 42", loose=True) == []  # < 100
        assert 5_000_000_000 not in regex_extract_asns(
            "id 5000000000", loose=True
        )


class TestProviderFilter:
    def test_transitive_providers_removed(self):
        topology = ASTopology()
        topology.add_p2c(1, 2)
        topology.add_p2c(2, 3)
        kept = filter_provider_relations(3, [1, 2, 99], topology)
        assert kept == [99]

    def test_no_providers_keeps_everything(self):
        topology = ASTopology()
        topology.add_asn(5)
        assert filter_provider_relations(5, [7, 8], topology) == [7, 8]

    def test_deep_chains_bounded(self):
        topology = ASTopology()
        for i in range(1, 30):
            topology.add_p2c(i, i + 1)
        kept = filter_provider_relations(30, list(range(1, 30)), topology)
        # Only the nearest 8 levels of providers are filtered.
        assert 29 not in kept
        assert 22 not in kept
        assert 1 in kept
