"""Remaining coverage: org keys, hypergiant structure, profile plumbing."""

import dataclasses

import pytest

from repro.config import LLMConfig
from repro.core.org_keys import oid_p_clusters, oid_w_clusters
from repro.llm.model_zoo import get_profile
from repro.peeringdb import Network, Organization, PDBSnapshot
from repro.universe.canonical import HYPERGIANT_PRIMARY_ASNS, build_canonical_plan
from repro.whois import ASNDelegation, WhoisDataset, WhoisOrg


class TestOrgKeys:
    def test_oid_w_covers_every_delegation(self):
        dataset = WhoisDataset.build(
            [WhoisOrg(org_id="A", name="A"), WhoisOrg(org_id="B", name="B")],
            [
                ASNDelegation(asn=1, org_id="A"),
                ASNDelegation(asn=2, org_id="A"),
                ASNDelegation(asn=3, org_id="B"),
            ],
        )
        clusters = oid_w_clusters(dataset)
        assert frozenset({1, 2}) in clusters
        assert frozenset({3}) in clusters
        assert sum(len(c) for c in clusters) == 3

    def test_oid_p_covers_only_registered(self):
        snapshot = PDBSnapshot.build(
            [Organization(org_id=1, name="X")],
            [
                Network(asn=10, name="a", org_id=1),
                Network(asn=11, name="b", org_id=1),
            ],
        )
        assert oid_p_clusters(snapshot) == [frozenset({10, 11})]


class TestHypergiantStructure:
    def test_primary_asns_are_the_papers(self):
        # Spot-check the well-known ones.
        assert HYPERGIANT_PRIMARY_ASNS["Google"] == 15169
        assert HYPERGIANT_PRIMARY_ASNS["Cloudflare"] == 13335
        assert HYPERGIANT_PRIMARY_ASNS["Akamai"] == 20940
        assert HYPERGIANT_PRIMARY_ASNS["EdgeCast"] == 15133

    def test_hypergiant_orgs_flagged(self):
        plan = build_canonical_plan()
        hypergiant_orgs = [o for o in plan.orgs if o.is_hypergiant]
        primaries = {
            asn for org in hypergiant_orgs for asn in org.asns
        }
        for asn in HYPERGIANT_PRIMARY_ASNS.values():
            assert asn in primaries

    def test_edgio_holds_both_brands(self):
        plan = build_canonical_plan()
        edgio = next(o for o in plan.orgs if o.org_id == "gt-edgio")
        tags = {b.brand_id.split("/")[-1] for b in edgio.brands}
        assert tags == {"edgecast", "limelight"}


class TestModelProfilePlumbing:
    def test_llm_config_inherits_base_settings(self):
        base = LLMConfig(max_tokens=512, seed=9)
        config = get_profile("gpt-4o-sim").llm_config(base)
        assert config.max_tokens == 512
        assert config.seed == 9
        assert config.model == "gpt-4o-sim"

    def test_llm_config_default_base(self):
        config = get_profile("llama-3-70b-sim").llm_config()
        assert config.temperature == 0.0  # paper sampling settings kept


class TestMappingUniverseEdgeCases:
    def test_empty_universe_mapping(self):
        from repro.core.mapping import OrgMapping

        mapping = OrgMapping(universe=[], clusters=[])
        assert len(mapping) == 0
        assert mapping.sizes() == []

    def test_cluster_fully_outside_universe_dropped(self):
        from repro.core.mapping import OrgMapping

        mapping = OrgMapping(universe=[1], clusters=[{5, 6}])
        assert len(mapping) == 1
        assert mapping.cluster_of(1) == frozenset({1})

    def test_theta_of_empty_mapping_is_zero(self):
        from repro.core.mapping import OrgMapping
        from repro.metrics import org_factor_from_mapping

        mapping = OrgMapping(universe=[], clusters=[])
        assert org_factor_from_mapping(mapping) == 0.0
