"""Seeded Zipfian load generation for the query service.

Real AS-lookup traffic is heavily skewed — a handful of hypergiant and
tier-1 ASNs absorb most queries — so the generator draws ASNs from a
Zipf(s) distribution over a shuffled rank order.  Everything is seeded:
the same ``(seed, universe)`` pair replays the identical request stream,
which is what lets the throughput benchmark compare runs.
"""

from __future__ import annotations

import bisect
import random
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from ..errors import ConfigError, UnknownASNError
from ..types import ASN
from .service import QueryService


class ZipfianSampler:
    """Draw items with Zipf(s) rank frequencies via inverse-CDF lookup."""

    def __init__(
        self, items: Sequence[ASN], s: float = 1.1, seed: int = 42
    ) -> None:
        if not items:
            raise ConfigError("cannot sample from an empty item set")
        if s <= 0:
            raise ConfigError(f"zipf exponent must be positive: {s}")
        self._rng = random.Random(seed)
        # Shuffle so "rank 1" is not simply the lowest ASN — which ASNs
        # are hot is itself part of the seeded scenario.
        self._items: List[ASN] = list(items)
        self._rng.shuffle(self._items)
        cdf: List[float] = []
        total = 0.0
        for rank in range(1, len(self._items) + 1):
            total += 1.0 / (rank ** s)
            cdf.append(total)
        self._cdf = [value / total for value in cdf]

    def sample(self) -> ASN:
        u = self._rng.random()
        return self._items[bisect.bisect_left(self._cdf, u)]

    def stream(self, n: int) -> Iterator[ASN]:
        for _ in range(n):
            yield self.sample()


@dataclass
class LoadReport:
    """What one load run did and how fast the service answered."""

    requests: int
    ok: int
    not_found: int
    elapsed_seconds: float
    mix: Dict[str, int] = field(default_factory=dict)

    @property
    def qps(self) -> float:
        return self.requests / self.elapsed_seconds if self.elapsed_seconds else 0.0

    def to_json(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "not_found": self.not_found,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "qps": round(self.qps, 1),
            "mix": dict(self.mix),
        }


class LoadGenerator:
    """Drive a :class:`QueryService` with a seeded Zipfian request mix."""

    def __init__(
        self,
        service: QueryService,
        asns: Sequence[ASN],
        seed: int = 42,
        zipf_s: float = 1.1,
    ) -> None:
        self.service = service
        self.sampler = ZipfianSampler(asns, s=zipf_s, seed=seed)
        self._rng = random.Random(seed ^ 0x5F5E100)

    def run(
        self,
        requests: int,
        sibling_fraction: float = 0.0,
        unknown_fraction: float = 0.0,
    ) -> LoadReport:
        """Issue *requests* lookups; fractions divert some to other ops.

        ``sibling_fraction`` of requests become pairwise sibling checks;
        ``unknown_fraction`` query an ASN outside the universe (the 404
        path), exercising the service's miss accounting.
        """
        ok = 0
        not_found = 0
        mix = {"asn": 0, "siblings": 0, "unknown": 0}
        service = self.service
        sample = self.sampler.sample
        draw = self._rng.random
        started = time.perf_counter()
        for _ in range(requests):
            r = draw()
            if r < unknown_fraction:
                mix["unknown"] += 1
                try:
                    service.lookup_asn(-1)
                    ok += 1
                except UnknownASNError:
                    not_found += 1
            elif r < unknown_fraction + sibling_fraction:
                mix["siblings"] += 1
                service.siblings(sample(), sample())
                ok += 1
            else:
                mix["asn"] += 1
                service.lookup_asn(sample())
                ok += 1
        elapsed = time.perf_counter() - started
        return LoadReport(
            requests=requests,
            ok=ok,
            not_found=not_found,
            elapsed_seconds=elapsed,
            mix=mix,
        )
