"""Borges core: the paper's primary contribution.

Four sibling-inference features over PeeringDB/WHOIS/web inputs —
organization keys (§4.1), LLM-based notes/aka extraction (§4.2), final-URL
matching and favicon classification (§4.3) — consolidated into one
AS-to-Organization mapping by transitive merging.
"""

from .evidence import Evidence, MappingExplainer, collect_evidence
from .mapping import OrgMapping
from .merge import UnionFind, merge_clusters
from .org_keys import oid_p_clusters, oid_w_clusters
from .ner import NERModule, NERRecordResult
from .web_inference import WebInferenceModule, WebInferenceResult
from .pipeline import BorgesPipeline, BorgesResult, FeatureClusters

__all__ = [
    "Evidence",
    "MappingExplainer",
    "collect_evidence",
    "OrgMapping",
    "UnionFind",
    "merge_clusters",
    "oid_p_clusters",
    "oid_w_clusters",
    "NERModule",
    "NERRecordResult",
    "WebInferenceModule",
    "WebInferenceResult",
    "BorgesPipeline",
    "BorgesResult",
    "FeatureClusters",
]
