"""Shared-memory serve tier: compiled snapshot blobs + a worker pool.

The single-process serve tier answers every lookup under one GIL.  This
package is the process-parallel read path that breaks that ceiling:

* :mod:`repro.serve.shm.blob` — a snapshot *compiler* that lowers a
  :class:`~repro.serve.index.MappingIndex` into one flat,
  offset-indexed, digest-stamped binary blob: a CHD-style minimal
  perfect hash over ASNs, org→members spans, a sorted token table with
  search postings, and a deduplicated string arena;
* :mod:`repro.serve.shm.reader` — :class:`BlobIndex`, a zero-copy
  reader reconstructing the full :class:`MappingIndex` query semantics
  (byte-identical responses) straight off an ``mmap`` view, with lazy
  ``__slots__`` record views instead of per-snapshot object graphs;
* :mod:`repro.serve.shm.segment` — blob segments as files under
  ``/dev/shm`` with an atomically-renamed generation pointer, so N
  processes map one physical copy read-only;
* :mod:`repro.serve.shm.pool` — :class:`WorkerPool`: forks N
  :class:`~repro.serve.httpd.QueryServer` workers behind
  ``SO_REUSEPORT``, hot-swaps generations through the pointer fence
  (publish → fence → workers remap+ack → old segment unlinked), and
  respawns crashed workers onto the current generation.

``borges serve --workers N`` is the CLI entry point; ``borges top
--pool DIR`` watches a running pool per-worker.
"""

from .blob import (
    BLOB_MAGIC,
    BLOB_SUFFIX,
    BLOB_VERSION,
    BlobFormatError,
    BlobHeader,
    compile_index,
    read_header,
    verify_blob,
)
from .reader import BlobAsnRecord, BlobIndex, BlobOrgRecord
from .segment import (
    MappedBlob,
    SegmentStore,
    default_shm_root,
    map_blob_file,
)
from .pool import (
    ForkedOutcome,
    WorkerConfig,
    WorkerPool,
    run_forked,
    run_supervised,
)

__all__ = [
    "BLOB_MAGIC",
    "BLOB_SUFFIX",
    "BLOB_VERSION",
    "BlobAsnRecord",
    "BlobFormatError",
    "BlobHeader",
    "BlobIndex",
    "BlobOrgRecord",
    "ForkedOutcome",
    "MappedBlob",
    "SegmentStore",
    "WorkerConfig",
    "WorkerPool",
    "compile_index",
    "default_shm_root",
    "map_blob_file",
    "read_header",
    "run_forked",
    "run_supervised",
    "verify_blob",
]
