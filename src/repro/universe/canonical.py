"""The paper's narrated scenarios, planted verbatim into every universe.

The paper motivates and validates Borges with concrete cases: the
Lumen/CenturyLink split across WHOIS vs PeeringDB (Fig. 3), Deutsche
Telekom's subsidiary-listing notes (Fig. 4), Edgecast/Limelight sharing
www.edg.io (Fig. 5a), the Clearwire → Sprint → T-Mobile redirect chain
(Fig. 5b), Claro's shared favicon across differing domains (Table 2),
Orange's shared brand token (§4.3.3), Digicel's Caribbean footprint
(Table 9), the Maxihost upstream-listing notes (Appendix B), the
Bootstrap default-favicon trap (Table 2), and the 16 hypergiants of §6.1
(Fig. 9).

This module builds those organizations with their real ASNs and encodes
the registry imperfections each scenario needs, as exporter directives
the generator honours.  Tests and examples reference the constants here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..types import ASN
from ..web.http import RedirectKind
from .entities import Brand, Org, OrgCategory
from .events import EventKind, MnAEvent
from .notes_synth import SynthesizedText

# -- well-known ASNs (as in the paper) ------------------------------------

AS_LUMEN = 3356
AS_CENTURYLINK = 209
AS_GLOBAL_CROSSING = 3549
AS_DEUTSCHE_TELEKOM = 3320
AS_SLOVAK_TELEKOM = 6855
AS_HRVATSKI_TELEKOM = 5391
AS_TMOBILE_US = 21928
AS_CLEARWIRE = 16586
AS_EDGECAST = 15133
AS_LIMELIGHT = 22822
AS_OPEN_TRANSIT = 5511
AS_MAXIHOST = 262287
AS_COGENT = 174

#: The 16 hypergiants of §6.1, name → primary ASN (paper's list).
HYPERGIANT_PRIMARY_ASNS: Dict[str, ASN] = {
    "Akamai": 20940,
    "Amazon": 16509,
    "Apple": 714,
    "Facebook": 32934,
    "Google": 15169,
    "Netflix": 2906,
    "Yahoo!": 10310,
    "OVH": 16276,
    "Limelight": AS_LIMELIGHT,
    "Microsoft": 8075,
    "Twitter": 13414,
    "Twitch": 46489,
    "Cloudflare": 13335,
    "EdgeCast": AS_EDGECAST,
    "Booking.com": 43996,
    "Spotify": 8403,
}

#: Synthetic filler ASNs (all < 100000, outside the generator's pool).
_FILLER_BASE = 90000


@dataclass
class ExtraSite:
    """A web host not owned by any surviving brand (e.g. www.sprint.com)."""

    host: str
    redirect_target: str = ""
    redirect_kind: RedirectKind = RedirectKind.HTTP_301
    favicon_brand: str = ""
    title: str = ""


@dataclass
class CanonicalPlan:
    """Orgs plus exporter directives for the planted scenarios."""

    orgs: List[Org] = field(default_factory=list)
    events: List[MnAEvent] = field(default_factory=list)
    #: brand_id → WHOIS-group key; brands sharing a key share one OID_W.
    whois_group: Dict[str, str] = field(default_factory=dict)
    #: brand_id → PDB-org key; brands sharing a key share one OID_P.
    pdb_group: Dict[str, str] = field(default_factory=dict)
    #: Brands that must appear in PeeringDB.
    register: Set[str] = field(default_factory=set)
    #: brand_id → PDB ``website`` field (when it differs from its host).
    website_field: Dict[str, str] = field(default_factory=dict)
    #: ASN → notes text with truth labels.
    notes: Dict[ASN, SynthesizedText] = field(default_factory=dict)
    #: ASN → aka text with truth labels.
    aka: Dict[ASN, SynthesizedText] = field(default_factory=dict)
    #: Hosts that must stay reachable despite the dead-site lottery.
    alive_hosts: Set[str] = field(default_factory=set)
    #: host → (target, kind) redirect overrides.
    redirects: Dict[str, Tuple[str, RedirectKind]] = field(default_factory=dict)
    extra_sites: List[ExtraSite] = field(default_factory=list)

    def all_asns(self) -> List[ASN]:
        result: List[ASN] = []
        for org in self.orgs:
            result.extend(org.asns)
        return sorted(result)

    # -- small builder helpers ------------------------------------------------

    def _add_org(self, org: Org) -> Org:
        self.orgs.append(org)
        for brand in org.brands:
            self.register.add(brand.brand_id)
            if brand.website_host:
                self.alive_hosts.add(brand.website_host)
        return org


def _brand(
    org_id: str,
    tag: str,
    name: str,
    country: str,
    cctld: str,
    asns: List[ASN],
    host: str = "",
    favicon: str = "",
    acquired: bool = False,
    language: str = "en",
) -> Brand:
    return Brand(
        brand_id=f"{org_id}/{tag}",
        name=name,
        org_id=org_id,
        country=country,
        cctld=cctld,
        asns=list(asns),
        website_host=host,
        favicon_brand=favicon,
        acquired=acquired,
        language=language,
    )


def _filler(offset: int, count: int) -> List[ASN]:
    start = _FILLER_BASE + offset
    return list(range(start, start + count))


def build_canonical_plan() -> CanonicalPlan:
    """Construct every planted scenario.  Deterministic, no randomness."""
    plan = CanonicalPlan()
    _plant_lumen(plan)
    _plant_deutsche_telekom(plan)
    _plant_edgio(plan)
    _plant_claro(plan)
    _plant_orange(plan)
    _plant_digicel(plan)
    _plant_tigo(plan)
    _plant_telkom_indonesia(plan)
    _plant_maxihost(plan)
    _plant_bootstrap_trap(plan)
    _plant_hypergiants(plan)
    return plan


# -- individual scenarios -----------------------------------------------------


def _plant_lumen(plan: CanonicalPlan) -> None:
    """Fig. 3: WHOIS splits Lumen/CenturyLink; PeeringDB unites them."""
    org = Org(
        org_id="gt-lumen",
        name="Lumen Technologies",
        category=OrgCategory.TRANSIT,
        region="northam",
        is_conglomerate=True,
        brand_token="lumen",
    )
    org.brands = [
        _brand("gt-lumen", "lumen", "Lumen", "US", "com",
               [AS_LUMEN, AS_GLOBAL_CROSSING], host="www.lumen.com",
               favicon="lumen"),
        _brand("gt-lumen", "centurylink", "CenturyLink", "US", "com",
               [AS_CENTURYLINK], host="www.centurylink.com",
               favicon="lumen", acquired=True),
    ]
    plan._add_org(org)
    plan.events.append(
        MnAEvent(EventKind.ACQUISITION, 2016, "gt-lumen", "gt-centurylink-legacy")
    )
    # WHOIS: separate legal entities (the failure AS2Org inherits).
    plan.whois_group["gt-lumen/lumen"] = "W:gt-lumen/lumen"
    plan.whois_group["gt-lumen/centurylink"] = "W:gt-lumen/centurylink"
    # PeeringDB: one operator org for both (the Fig. 3 win for OID_P).
    plan.pdb_group["gt-lumen/lumen"] = "P:gt-lumen"
    plan.pdb_group["gt-lumen/centurylink"] = "P:gt-lumen"
    plan.redirects["www.centurylink.com"] = (
        "https://www.lumen.com/", RedirectKind.HTTP_301
    )


def _plant_deutsche_telekom(plan: CanonicalPlan) -> None:
    """Fig. 4 notes + the Clearwire chain of Fig. 5b."""
    org = Org(
        org_id="gt-dtag",
        name="Deutsche Telekom",
        category=OrgCategory.ACCESS,
        region="europe",
        is_conglomerate=True,
        brand_token="telekom",
    )
    org.brands = [
        _brand("gt-dtag", "dtag", "Deutsche Telekom AG", "DE", "de",
               [AS_DEUTSCHE_TELEKOM], host="www.telekom.de",
               favicon="telekom", language="de"),
        _brand("gt-dtag", "sk", "Slovak Telekom", "SK", "sk",
               [AS_SLOVAK_TELEKOM], host="www.telekom.sk", favicon="telekom"),
        _brand("gt-dtag", "hr", "Hrvatski Telekom", "HR", "ht.hr",
               [AS_HRVATSKI_TELEKOM], host="www.t.ht.hr", favicon="telekom"),
        _brand("gt-dtag", "tmus", "T-Mobile US", "US", "com",
               [AS_TMOBILE_US], host="www.t-mobile.com", favicon="telekom"),
        _brand("gt-dtag", "clearwire", "Clear Wire", "US", "com",
               [AS_CLEARWIRE], host="www.clearwire.com",
               favicon="", acquired=True),
    ]
    plan._add_org(org)
    plan.events.append(
        MnAEvent(EventKind.ACQUISITION, 2020, "gt-dtag", "gt-sprint-legacy")
    )
    for brand in org.brands:
        plan.whois_group[brand.brand_id] = f"W:{brand.brand_id}"
        plan.pdb_group[brand.brand_id] = f"P:{brand.brand_id}"
    # The Fig. 4 notes: DTAG reports its European subsidiaries.
    plan.notes[AS_DEUTSCHE_TELEKOM] = SynthesizedText(
        text=(
            "Deutsche Telekom Global Carrier.\n"
            "Our European subsidiaries are part of the same organization: "
            f"AS{AS_SLOVAK_TELEKOM} (Slovak Telekom) and "
            f"AS{AS_HRVATSKI_TELEKOM} (Hrvatski Telekom)."
        ),
        true_siblings=(AS_HRVATSKI_TELEKOM, AS_SLOVAK_TELEKOM),
    )
    # Fig. 5b: Clearwire's stale PDB site redirects through Sprint.
    plan.redirects["www.clearwire.com"] = (
        "https://www.sprint.com/", RedirectKind.HTTP_302
    )
    plan.extra_sites.append(
        ExtraSite(
            host="www.sprint.com",
            redirect_target="https://www.t-mobile.com/",
            redirect_kind=RedirectKind.HTTP_301,
            title="Sprint",
        )
    )
    plan.alive_hosts.add("www.sprint.com")


def _plant_edgio(plan: CanonicalPlan) -> None:
    """Fig. 5a: Edgecast and Limelight both land on www.edg.io."""
    org = Org(
        org_id="gt-edgio",
        name="Edgio",
        category=OrgCategory.CONTENT,
        region="northam",
        is_conglomerate=True,
        is_hypergiant=True,
        brand_token="edgio",
    )
    org.brands = [
        _brand("gt-edgio", "edgecast", "Edgecast", "US", "com",
               [AS_EDGECAST] + _filler(0, 3), host="www.edgecast.com",
               favicon="edgio", acquired=True),
        _brand("gt-edgio", "limelight", "Limelight Networks", "US", "com",
               [AS_LIMELIGHT] + _filler(10, 8), host="www.edg.io",
               favicon="edgio"),
    ]
    plan._add_org(org)
    plan.events.append(
        MnAEvent(EventKind.MERGER, 2022, "gt-edgio", "gt-edgecast-legacy")
    )
    for brand in org.brands:
        plan.whois_group[brand.brand_id] = f"W:{brand.brand_id}"
        plan.pdb_group[brand.brand_id] = f"P:{brand.brand_id}"
    plan.redirects["www.edgecast.com"] = (
        "https://www.edg.io/", RedirectKind.HTTP_301
    )


def _plant_claro(plan: CanonicalPlan) -> None:
    """Table 2 row 1: shared favicon, slightly different domains."""
    org = Org(
        org_id="gt-claro",
        name="Claro",
        category=OrgCategory.ACCESS,
        region="latam",
        is_conglomerate=True,
        brand_token="claro",
    )
    countries = (
        ("cl", "Claro Chile", "CL", "cl", "www.clarochile.cl"),
        ("pr", "Claro Puerto Rico", "PR", "pr", "www.claropr.com"),
        ("pe", "Claro Peru", "PE", "com.pe", "www.claro.com.pe"),
        ("do", "Claro Dominicana", "DO", "com.do", "www.claro.com.do"),
        ("br", "Claro Brasil", "BR", "com.br", "www.claro.com.br"),
        ("ar", "Claro Argentina", "AR", "com.ar", "www.claro.com.ar"),
    )
    org.brands = [
        _brand("gt-claro", tag, name, cc, tld, _filler(100 + i * 2, 2),
               host=host, favicon="claro", language="es")
        for i, (tag, name, cc, tld, host) in enumerate(countries)
    ]
    plan._add_org(org)
    for brand in org.brands:
        plan.whois_group[brand.brand_id] = f"W:{brand.brand_id}"
        plan.pdb_group[brand.brand_id] = f"P:{brand.brand_id}"


def _plant_orange(plan: CanonicalPlan) -> None:
    """§4.3.3: orange.es/orange.pl share brand token; Open Transit differs."""
    org = Org(
        org_id="gt-orange",
        name="Orange",
        category=OrgCategory.ACCESS,
        region="europe",
        is_conglomerate=True,
        brand_token="orange",
    )
    org.brands = [
        _brand("gt-orange", "fr", "Orange France", "FR", "fr",
               _filler(130, 2), host="www.orange.fr", favicon="orange",
               language="fr"),
        _brand("gt-orange", "es", "Orange Espana", "ES", "es",
               _filler(132, 1), host="www.orange.es", favicon="orange",
               language="es"),
        _brand("gt-orange", "pl", "Orange Polska", "PL", "pl",
               _filler(133, 1), host="www.orange.pl", favicon="orange"),
        _brand("gt-orange", "opentransit", "Open Transit", "FR", "net",
               [AS_OPEN_TRANSIT], host="www.opentransit.net",
               favicon="orange", language="fr"),
    ]
    plan._add_org(org)
    for brand in org.brands:
        plan.whois_group[brand.brand_id] = f"W:{brand.brand_id}"
        plan.pdb_group[brand.brand_id] = f"P:{brand.brand_id}"


def _plant_digicel(plan: CanonicalPlan) -> None:
    """Table 1/Table 9: Digicel's subsidiaries share favicon and token."""
    org = Org(
        org_id="gt-digicel",
        name="Digicel",
        category=OrgCategory.ACCESS,
        region="caribbean",
        is_conglomerate=True,
        brand_token="digicel",
    )
    countries = (
        "JM", "TT", "BB", "HT", "GY", "SR", "LC", "VC", "GD", "AG",
        "DM", "KN", "AW", "CW", "BM", "KY", "TC", "VG", "AI", "MS",
        "BZ", "FJ", "PG", "VU", "WS",
    )
    org.brands = [
        _brand(
            "gt-digicel", cc.lower(), f"Digicel {cc}", cc, "com",
            _filler(140 + i, 1),
            host=f"www.digicel{cc.lower()}.com", favicon="digicel",
        )
        for i, cc in enumerate(countries)
    ]
    plan._add_org(org)
    # WHOIS groups the first four under one legacy org (footprint 4 in
    # AS2Org), everything else fragments (→ 25 under Borges, Table 9).
    for i, brand in enumerate(org.brands):
        key = "W:gt-digicel/legacy" if i < 4 else f"W:{brand.brand_id}"
        plan.whois_group[brand.brand_id] = key
        plan.pdb_group[brand.brand_id] = f"P:{brand.brand_id}"


def _plant_tigo(plan: CanonicalPlan) -> None:
    """A Table 8 heavyweight: TIGO across Latin America (favicon+token)."""
    org = Org(
        org_id="gt-tigo",
        name="TIGO",
        category=OrgCategory.ACCESS,
        region="latam",
        is_conglomerate=True,
        brand_token="tigo",
    )
    countries = (
        ("CO", "com.co"), ("GT", "com.gt"), ("HN", "com.hn"),
        ("SV", "com.sv"), ("PY", "com.py"), ("BO", "com.bo"),
        ("TZ", "co.tz"),
    )
    org.brands = [
        _brand("gt-tigo", cc.lower(), f"Tigo {cc}", cc, tld,
               _filler(170 + i * 2, 2), host=f"www.tigo.{tld}",
               favicon="tigo", language="es")
        for i, (cc, tld) in enumerate(countries)
    ]
    plan._add_org(org)
    for brand in org.brands:
        plan.whois_group[brand.brand_id] = f"W:{brand.brand_id}"
        plan.pdb_group[brand.brand_id] = f"P:{brand.brand_id}"


def _plant_telkom_indonesia(plan: CanonicalPlan) -> None:
    """Another Table 8 heavyweight, linked through notes + aka."""
    org = Org(
        org_id="gt-telkomid",
        name="Telkom Indonesia",
        category=OrgCategory.ACCESS,
        region="apac",
        is_conglomerate=True,
        brand_token="telkom",
    )
    main = _filler(190, 1)[0]
    mobile = _filler(191, 1)[0]
    metra = _filler(192, 1)[0]
    org.brands = [
        _brand("gt-telkomid", "telkom", "Telkom Indonesia", "ID", "co.id",
               [main], host="www.telkom.co.id", favicon="telkomid",
               language="id"),
        _brand("gt-telkomid", "telkomsel", "Telkomsel", "ID", "co.id",
               [mobile], host="www.telkomsel.co.id", favicon="telkomid",
               language="id"),
        _brand("gt-telkomid", "metra", "Telkom Metra", "ID", "co.id",
               [metra], host="www.telkommetra.co.id", favicon="telkomid",
               language="id"),
    ]
    plan._add_org(org)
    for brand in org.brands:
        plan.whois_group[brand.brand_id] = f"W:{brand.brand_id}"
        plan.pdb_group[brand.brand_id] = f"P:{brand.brand_id}"
    plan.notes[main] = SynthesizedText(
        text=(
            "Kami adalah bagian dari grup Telkom Indonesia. Kami juga "
            f"mengoperasikan AS{mobile} dan AS{metra}."
        ),
        true_siblings=(mobile, metra),
    )
    plan.aka[mobile] = SynthesizedText(
        text=f"Telkomsel (AS{mobile}), sister of AS{main}",
        true_siblings=(main,),
    )


def _plant_maxihost(plan: CanonicalPlan) -> None:
    """Appendix B: numeric notes that report upstreams, not siblings."""
    org = Org(
        org_id="gt-maxihost",
        name="Latitude.sh",
        category=OrgCategory.ENTERPRISE,
        region="latam",
        brand_token="latitude",
    )
    org.brands = [
        _brand("gt-maxihost", "main", "Maxihost", "BR", "com.br",
               [AS_MAXIHOST], host="www.latitude.sh", favicon="latitude",
               language="pt"),
    ]
    plan._add_org(org)
    plan.whois_group["gt-maxihost/main"] = "W:gt-maxihost/main"
    plan.pdb_group["gt-maxihost/main"] = "P:gt-maxihost/main"
    plan.notes[AS_MAXIHOST] = SynthesizedText(
        text=(
            "Through the Bare Metal Cloud proprietary platform, Maxihost "
            "deploys high-performance physical servers in multiple regions "
            "around the globe.\n\n"
            "We connect directly with the following ISPs,\n"
            "- Algar (AS16735)\n"
            "- Sparkle (AS6762)\n"
            "- Voxility (AS3223)\n"
            "- GTT (AS3257)\n"
            f"- Cogent (AS{AS_COGENT})"
        ),
        true_siblings=(),
        foreign_asns=(AS_COGENT, 3223, 3257, 6762, 16735),
    )


def _plant_bootstrap_trap(plan: CanonicalPlan) -> None:
    """Table 2 row 2: unrelated sites sharing Bootstrap's default icon."""
    hosts = (
        ("www.anosbd.com", "BD", "com.bd"),
        ("www.rptechzone.in", "IN", "co.in"),
        ("bapenda.riau.go.id", "ID", "riau.go.id"),
        ("www.conexaointernet.com.br", "BR", "com.br"),
        ("www.ramdiaonlinebd.com", "BD", "com.bd"),
    )
    for i, (host, country, tld) in enumerate(hosts):
        org_id = f"gt-bootstrap-{i}"
        org = Org(
            org_id=org_id,
            name=f"Bootstrap Trap {i}",
            category=OrgCategory.ENTERPRISE,
            region="apac",
        )
        org.brands = [
            _brand(org_id, "main", f"Unrelated ISP {i}", country, tld,
                   _filler(200 + i, 1), host=host,
                   favicon="bootstrap-default"),
        ]
        plan._add_org(org)
        plan.whois_group[f"{org_id}/main"] = f"W:{org_id}/main"
        plan.pdb_group[f"{org_id}/main"] = f"P:{org_id}/main"


def _plant_hypergiants(plan: CanonicalPlan) -> None:
    """The 16 hypergiants of §6.1 with the paper's observed gains.

    Five improve under Borges (Fig. 9): EdgeCast (+9, via Limelight —
    planted in :func:`_plant_edgio`), Google (+3, via notes), Microsoft
    (+1, via shared favicon), Amazon (+1, via a redirect), and Cloudflare
    (+1, via aka).  The rest are already complete in WHOIS.
    """
    base_sizes = {
        "Akamai": 28, "Amazon": 30, "Apple": 6, "Facebook": 8,
        "Google": 20, "Netflix": 5, "Yahoo!": 12, "OVH": 10,
        "Microsoft": 25, "Twitter": 5, "Twitch": 3, "Cloudflare": 7,
        "Booking.com": 3, "Spotify": 4,
    }
    offset = 300
    for name, size in sorted(base_sizes.items()):
        primary = HYPERGIANT_PRIMARY_ASNS[name]
        token = (
            name.lower().replace("!", "").replace(".com", "").replace(".", "")
        )
        org_id = f"gt-hg-{token}"
        org = Org(
            org_id=org_id,
            name=name,
            category=OrgCategory.CONTENT,
            region="northam",
            is_conglomerate=size > 6,
            is_hypergiant=True,
            brand_token=token,
        )
        main_asns = [primary] + _filler(offset, size - 1)
        offset += size + 4
        org.brands = [
            _brand(org_id, "main", name, "US", "com", main_asns,
                   host=f"www.{token}.com", favicon=token),
        ]
        plan._add_org(org)
        plan.whois_group[f"{org_id}/main"] = f"W:{org_id}/main"
        plan.pdb_group[f"{org_id}/main"] = f"P:{org_id}/main"

        if name == "Google":
            fiber = _filler(offset, 3)
            offset += 7
            extra = _brand(org_id, "fiber", "Google Fiber", "US", "com",
                           fiber, host=f"fiber.{token}.net", favicon=token)
            org.brands.append(extra)
            plan.register.add(extra.brand_id)
            plan.alive_hosts.add(extra.website_host)
            plan.whois_group[extra.brand_id] = f"W:{extra.brand_id}"
            plan.pdb_group[extra.brand_id] = f"P:{extra.brand_id}"
            plan.notes[primary] = SynthesizedText(
                text=(
                    "Google Fiber is part of the same organization: "
                    + ", ".join(f"AS{a}" for a in fiber)
                ),
                true_siblings=tuple(fiber),
            )
        elif name == "Microsoft":
            unit = _filler(offset, 1)
            offset += 5
            extra = _brand(org_id, "gaming", "Microsoft Gaming", "US", "net",
                           unit, host="www.xboxnet.net", favicon=token)
            org.brands.append(extra)
            plan.register.add(extra.brand_id)
            plan.alive_hosts.add(extra.website_host)
            plan.whois_group[extra.brand_id] = f"W:{extra.brand_id}"
            plan.pdb_group[extra.brand_id] = f"P:{extra.brand_id}"
        elif name == "Amazon":
            unit = _filler(offset, 1)
            offset += 5
            extra = _brand(org_id, "video", "Amazon Video", "US", "tv",
                           unit, host="www.primevideohub.tv", favicon="",
                           acquired=True)
            org.brands.append(extra)
            plan.register.add(extra.brand_id)
            plan.alive_hosts.add(extra.website_host)
            plan.whois_group[extra.brand_id] = f"W:{extra.brand_id}"
            plan.pdb_group[extra.brand_id] = f"P:{extra.brand_id}"
            plan.redirects["www.primevideohub.tv"] = (
                f"https://www.{token}.com/", RedirectKind.META_REFRESH
            )
        elif name == "Cloudflare":
            unit = _filler(offset, 1)
            offset += 5
            extra = _brand(org_id, "area1", "Area 1 Security", "US", "com",
                           unit, host="www.area1sec.com", favicon="area1")
            org.brands.append(extra)
            plan.register.add(extra.brand_id)
            plan.alive_hosts.add(extra.website_host)
            plan.whois_group[extra.brand_id] = f"W:{extra.brand_id}"
            plan.pdb_group[extra.brand_id] = f"P:{extra.brand_id}"
            plan.aka[unit[0]] = SynthesizedText(
                text=f"Area 1 Security, now Cloudflare AS{primary}",
                true_siblings=(primary,),
            )
