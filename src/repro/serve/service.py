"""The query service: cached, metered lookups over the active snapshot.

:class:`QueryService` is the in-process read API the HTTP layer, the CLI
(``borges query``) and the load generator all share.  Per-endpoint
latency histograms use lookup-scale (sub-millisecond) buckets; metric
children are resolved once at construction so the per-request cost is a
dict hit, not a registry lock.  Responses are cached in a small LRU keyed
by ``(generation, endpoint, args)`` — a hot-swap changes the generation
and thereby invalidates the whole cache without any explicit flush.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import NoSnapshotError, UnknownASNError, UnknownOrgError
from ..obs import DEFAULT_LOOKUP_BUCKETS, get_registry
from ..types import ASN
from .store import SnapshotStore

#: The endpoints the service meters; the HTTP layer maps routes onto them.
ENDPOINTS = ("asn", "org", "siblings", "search", "batch")


class _ResponseLRU:
    """Bounded (generation, endpoint, args) → response-dict cache."""

    __slots__ = ("_entries", "_max_entries", "hits", "misses")

    def __init__(self, max_entries: int) -> None:
        self._entries: "OrderedDict[tuple, dict]" = OrderedDict()
        self._max_entries = max(1, max_entries)
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Optional[dict]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, value: dict) -> None:
        self._entries[key] = value
        if len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }


class QueryService:
    """Answer ASN/org/sibling/search queries against a snapshot store."""

    def __init__(
        self,
        store: Optional[SnapshotStore] = None,
        registry=None,
        cache_size: int = 8192,
    ) -> None:
        self.registry = registry or get_registry()
        self.store = store or SnapshotStore(registry=self.registry)
        self._cache = _ResponseLRU(cache_size)
        # Pre-resolved metric children: one registry round-trip at init
        # instead of one (lock + label sort) per request.
        self._latency = {
            endpoint: self.registry.histogram(
                "serve_request_seconds",
                "Query service latency per endpoint",
                buckets=DEFAULT_LOOKUP_BUCKETS,
                endpoint=endpoint,
            )
            for endpoint in ENDPOINTS
        }
        self._requests = {
            (endpoint, status): self.registry.counter(
                "serve_requests_total",
                "Query service requests by endpoint and status",
                endpoint=endpoint,
                status=status,
            )
            for endpoint in ENDPOINTS
            for status in ("ok", "not_found", "unavailable")
        }
        self._cache_hits = self.registry.counter(
            "serve_cache_hits_total", "Response cache hits"
        )
        self._batch_sizes = self.registry.histogram(
            "serve_batch_size",
            "ASNs per batch lookup",
            buckets=(1.0, 2.0, 5.0, 10.0, 25.0, 100.0, 1000.0),
        )

    # -- plumbing ----------------------------------------------------------

    def _finish(self, endpoint: str, status: str, started: float) -> None:
        self._latency[endpoint].observe(time.perf_counter() - started)
        self._requests[(endpoint, status)].inc()

    def _annotate(self, response: dict, generation: int) -> dict:
        response["generation"] = generation
        if self.store.stale:
            response["stale"] = True
        return response

    # -- endpoints ---------------------------------------------------------

    def lookup_asn(self, asn: ASN) -> dict:
        """Resolve one ASN to its organization (the hot path)."""
        started = time.perf_counter()
        try:
            snapshot = self.store.current()
            key = (snapshot.generation, "asn", asn)
            cached = self._cache.get(key)
            if cached is not None:
                self._cache_hits.inc()
                self._finish("asn", "ok", started)
                return cached
            try:
                record = snapshot.index.lookup_asn(asn)
            except UnknownASNError:
                self._finish("asn", "not_found", started)
                raise
            response = self._annotate(record.to_json(), snapshot.generation)
            self._cache.put(key, response)
            self._finish("asn", "ok", started)
            return response
        except NoSnapshotError:
            self._finish("asn", "unavailable", started)
            raise

    def batch_lookup(self, asns: Iterable[ASN]) -> List[dict]:
        """Resolve many ASNs against one pinned generation.

        Unknown ASNs yield ``{"asn": n, "error": "unknown_asn"}`` entries
        instead of failing the whole batch.
        """
        started = time.perf_counter()
        try:
            with self.store.acquire() as snapshot:
                out: List[dict] = []
                for asn in asns:
                    key = (snapshot.generation, "asn", asn)
                    cached = self._cache.get(key)
                    if cached is not None:
                        self._cache_hits.inc()
                        out.append(cached)
                        continue
                    try:
                        record = snapshot.index.lookup_asn(asn)
                    except UnknownASNError:
                        out.append({"asn": asn, "error": "unknown_asn"})
                        continue
                    response = self._annotate(
                        record.to_json(), snapshot.generation
                    )
                    self._cache.put(key, response)
                    out.append(response)
        except NoSnapshotError:
            self._finish("batch", "unavailable", started)
            raise
        self._batch_sizes.observe(float(len(out)))
        self._finish("batch", "ok", started)
        return out

    def lookup_org(self, org_id: str) -> dict:
        started = time.perf_counter()
        try:
            snapshot = self.store.current()
            key = (snapshot.generation, "org", org_id)
            cached = self._cache.get(key)
            if cached is not None:
                self._cache_hits.inc()
                self._finish("org", "ok", started)
                return cached
            try:
                record = snapshot.index.org(org_id)
            except UnknownOrgError:
                self._finish("org", "not_found", started)
                raise
            response = self._annotate(record.to_json(), snapshot.generation)
            self._cache.put(key, response)
            self._finish("org", "ok", started)
            return response
        except NoSnapshotError:
            self._finish("org", "unavailable", started)
            raise

    def siblings(self, a: ASN, b: Optional[ASN] = None) -> dict:
        """With *b*: are the two ASNs siblings?  Without: list *a*'s org."""
        started = time.perf_counter()
        try:
            snapshot = self.store.current()
            index = snapshot.index
            if b is None:
                try:
                    record = index.lookup_asn(a)
                except UnknownASNError:
                    self._finish("siblings", "not_found", started)
                    raise
                response = self._annotate(
                    {
                        "asn": a,
                        "org_id": record.org.org_id,
                        "siblings": [m for m in record.org.members if m != a],
                    },
                    snapshot.generation,
                )
            else:
                response = self._annotate(
                    {"a": a, "b": b, "siblings": index.are_siblings(a, b)},
                    snapshot.generation,
                )
            self._finish("siblings", "ok", started)
            return response
        except NoSnapshotError:
            self._finish("siblings", "unavailable", started)
            raise

    def search(self, query: str, limit: int = 10) -> dict:
        started = time.perf_counter()
        try:
            snapshot = self.store.current()
            key = (snapshot.generation, "search", query, limit)
            cached = self._cache.get(key)
            if cached is not None:
                self._cache_hits.inc()
                self._finish("search", "ok", started)
                return cached
            records = snapshot.index.search(query, limit=limit)
            response = self._annotate(
                {
                    "query": query,
                    "results": [r.to_json() for r in records],
                },
                snapshot.generation,
            )
            self._cache.put(key, response)
            self._finish("search", "ok", started)
            return response
        except NoSnapshotError:
            self._finish("search", "unavailable", started)
            raise

    # -- health / accounting ----------------------------------------------

    def health(self) -> Tuple[bool, dict]:
        """(ready, body) for ``/healthz``: 503 until a snapshot loads."""
        snapshot = self.store.current_or_none()
        if snapshot is None:
            return False, {"status": "unavailable"}
        status = "degraded" if self.store.stale else "ok"
        return True, {
            "status": status,
            "generation": snapshot.generation,
            "orgs": len(snapshot.index),
            "asns": snapshot.index.asn_count,
        }

    def stats(self) -> Dict[str, object]:
        totals: Dict[str, float] = {}
        for (endpoint, status), counter in self._requests.items():
            if counter.value:
                totals[f"{endpoint}.{status}"] = counter.value
        return {
            "snapshot": self.store.stats(),
            "requests": totals,
            "response_cache": self._cache.stats(),
        }
