"""Table 9: country-level footprints of international conglomerates.

The footprint of an organization is the number of countries where the
APNIC-style estimates see users for its member ASNs.  Borges's merges
expand footprints when subsidiaries operate in different countries; the
analysis compares each changed organization's merged footprint against
its largest prior (AS2Org) component's footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..apnic import ApnicDataset
from ..core.mapping import OrgMapping
from ..metrics.growth import baseline_components


@dataclass
class FootprintSummary:
    """§6.2's aggregate: how many orgs expanded, and by how much."""

    expanded_count: int
    mean_marginal_countries: float


def _footprint_rows(
    borges: OrgMapping,
    as2org: OrgMapping,
    apnic: ApnicDataset,
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for cluster in borges.changed_clusters_vs(as2org):
        borges_countries = apnic.countries_of_group(cluster)
        if not borges_countries:
            continue
        components = baseline_components(cluster, as2org.cluster_of)
        prior = max(
            (len(apnic.countries_of_group(c)) for c in components),
            default=0,
        )
        difference = len(borges_countries) - prior
        if difference <= 0:
            continue
        rows.append(
            {
                "company": borges.org_name_of(min(cluster)),
                "as2org_countries": prior,
                "borges_countries": len(borges_countries),
                "difference": difference,
            }
        )
    rows.sort(key=lambda r: (-int(r["difference"]), str(r["company"])))
    return rows


def footprint_growth(
    borges: OrgMapping,
    as2org: OrgMapping,
    apnic: ApnicDataset,
    top_n: int = 20,
) -> List[Dict[str, object]]:
    """Table 9: the top-N organizations by country-footprint growth."""
    return _footprint_rows(borges, as2org, apnic)[:top_n]


def footprint_summary(
    borges: OrgMapping,
    as2org: OrgMapping,
    apnic: ApnicDataset,
) -> FootprintSummary:
    """§6.2's headline: expanded-org count and mean marginal increase."""
    rows = _footprint_rows(borges, as2org, apnic)
    if not rows:
        return FootprintSummary(expanded_count=0, mean_marginal_countries=0.0)
    return FootprintSummary(
        expanded_count=len(rows),
        mean_marginal_countries=(
            sum(int(r["difference"]) for r in rows) / len(rows)
        ),
    )
