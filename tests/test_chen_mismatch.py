"""Tests for the Chen et al. mismatch-refinement baseline."""

import pytest

from repro.baselines.chen_mismatch import (
    build_chen_mapping,
    find_mismatch_candidates,
    keyword_match,
    name_keywords,
)
from repro.metrics import org_factor_from_mapping
from repro.metrics.partition import score_partition
from repro.universe.canonical import AS_CENTURYLINK, AS_LUMEN


class TestKeywords:
    def test_distinctive_tokens_extracted(self):
        assert "lumen" in name_keywords("Lumen Technologies LLC")

    def test_stopwords_removed(self):
        assert name_keywords("The Internet Network Company Ltd") == frozenset()

    def test_short_tokens_dropped(self):
        assert "at" not in name_keywords("AT Industries")

    def test_match_on_shared_brand(self):
        assert keyword_match("Claro Chile SA", "Claro Puerto Rico Inc")

    def test_no_match_on_generic_words_only(self):
        assert not keyword_match("Vega Telecom", "Sierra Telecom")


class TestCandidates:
    def test_lumen_mismatch_found_and_accepted(self, universe):
        candidates = find_mismatch_candidates(universe.whois, universe.pdb)
        lumen = [
            c for c in candidates
            if {AS_LUMEN, AS_CENTURYLINK} <= c.cluster
        ]
        assert lumen
        assert lumen[0].accepted  # "Lumen" appears in both org names

    def test_candidates_have_reasons(self, universe):
        for candidate in find_mismatch_candidates(universe.whois, universe.pdb):
            assert candidate.reason
            assert candidate.source == "pdb_only"

    def test_agreeing_sources_not_flagged(self, universe):
        # Candidates exist only where WHOIS splits what PDB groups.
        whois = universe.whois
        for candidate in find_mismatch_candidates(whois, universe.pdb):
            org_ids = {whois.org_id_of(a) for a in candidate.cluster}
            assert len(org_ids) > 1


class TestMapping:
    def test_sits_between_as2org_and_borges(
        self, universe, as2org_mapping, borges_mapping
    ):
        chen = build_chen_mapping(universe.whois, universe.pdb)
        theta_chen = org_factor_from_mapping(chen)
        assert org_factor_from_mapping(as2org_mapping) <= theta_chen
        assert theta_chen <= org_factor_from_mapping(borges_mapping)

    def test_keyword_filter_protects_precision(self, universe):
        chen = build_chen_mapping(universe.whois, universe.pdb)
        scores = score_partition(
            chen.clusters(), universe.ground_truth.true_clusters()
        )
        assert scores.pair_precision > 0.95

    def test_method_label(self, universe):
        chen = build_chen_mapping(universe.whois, universe.pdb)
        assert chen.method == "chen-mismatch"
