"""Retry policies: exponential backoff, seeded jitter, error classification.

A :class:`RetryPolicy` decides *whether* to retry (via the exception's
``retryable`` attribute — see :mod:`repro.errors`), *how long* to wait
(exponential backoff capped at ``max_delay``, with deterministic seeded
jitter so two identically-seeded runs sleep identically), and *how* to
wait (the ``sleep`` callable is injectable, so tests run with a no-op
clock instead of real time).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, TypeVar

from ..errors import ConfigError
from .seeding import stable_unit

T = TypeVar("T")


def is_retryable(exc: BaseException) -> bool:
    """Default error classification: honour the exception's own verdict.

    Errors raised by :mod:`repro` carry a ``retryable`` attribute
    (transient rate limits and timeouts set it; malformed requests and
    open circuits do not).  Foreign exceptions default to fatal.
    """
    return bool(getattr(exc, "retryable", False))


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay_for(attempt)`` grows ``base_delay * multiplier**(attempt-1)``
    up to ``max_delay``; ``jitter`` then perturbs it by up to ±that
    fraction, keyed by ``(seed, key, attempt)`` so the schedule is a pure
    function of its inputs.
    """

    attempts: int = 3
    base_delay: float = 0.01
    max_delay: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 97
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def validate(self) -> "RetryPolicy":
        if self.attempts < 1:
            raise ConfigError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter out of [0,1]: {self.jitter}")
        return self

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Backoff before retrying after the *attempt*-th failure (1-based)."""
        delay = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if delay <= 0.0:
            return 0.0
        if self.jitter > 0.0:
            unit = stable_unit(self.seed, "backoff", key, attempt)
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return max(0.0, delay)

    def schedule(self, key: str = "") -> List[float]:
        """The full backoff schedule (one delay per retryable failure)."""
        return [self.delay_for(n, key) for n in range(1, self.attempts)]

    def execute(
        self,
        fn: Callable[[], T],
        *,
        key: str = "",
        classify: Optional[Callable[[BaseException], bool]] = None,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    ) -> T:
        """Run *fn* under this policy.

        Retryable failures (per *classify*, default :func:`is_retryable`)
        are retried after backoff until ``attempts`` is exhausted; the
        last error — or the first fatal one — propagates unchanged.
        ``on_retry(attempt, exc, delay)`` fires before each sleep.
        """
        classify = classify if classify is not None else is_retryable
        for attempt in range(1, self.attempts + 1):
            try:
                return fn()
            except Exception as exc:
                if attempt >= self.attempts or not classify(exc):
                    raise
                delay = self.delay_for(attempt, key)
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                if delay > 0.0:
                    self.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover
