"""Headless-browser analogue: resolve final URLs through R&R chains.

This is the reproduction of §4.3.1's Selenium component.  Given a URL,
:class:`HeadlessScraper` follows HTTP 30x redirects and — because a real
headless browser renders pages — meta-refresh and JavaScript redirects,
until it reaches a stable final URL.  A plain HTTP client (``browser
=False``) follows only the 30x hops, which is what the R&R ablation
compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import ScraperConfig
from ..errors import FetchError, URLError
from ..logutil import get_logger
from ..obs.registry import (
    DEFAULT_COUNT_BUCKETS,
    MetricsRegistry,
    get_registry,
)
from .http import HTTPResponse
from .simweb import SimulatedWeb
from .url import normalize_url, parse_url

_LOG = get_logger("web.scraper")


@dataclass(frozen=True)
class ScrapeResult:
    """Outcome of resolving one PeeringDB website URL."""

    requested_url: str
    final_url: Optional[str]
    chain: Tuple[str, ...]
    ok: bool
    error: str = ""

    @property
    def hops(self) -> int:
        """Number of redirect hops taken (0 = landed directly)."""
        return max(0, len(self.chain) - 1)

    @property
    def redirected(self) -> bool:
        return self.hops > 0


class HeadlessScraper:
    """Resolves URLs against a :class:`SimulatedWeb` (or compatible driver).

    The driver only needs a ``fetch(url) -> HTTPResponse`` method, so a
    real HTTP client can be substituted without touching Borges.
    """

    def __init__(
        self,
        web: SimulatedWeb,
        config: Optional[ScraperConfig] = None,
        browser: bool = True,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._web = web
        self._config = (config or ScraperConfig()).validate()
        self._browser = browser
        self._registry = registry
        self._cache: Dict[str, ScrapeResult] = {}

    @property
    def _metrics(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def browser_mode(self) -> bool:
        return self._browser

    def resolve(self, url: str) -> ScrapeResult:
        """Follow *url* to its final destination.

        Never raises for web-level failures; the result's ``ok`` flag and
        ``error`` string report dead hosts, loops and bad URLs — matching
        the paper's accounting of unreachable PDB websites.
        """
        try:
            start = normalize_url(url)
        except URLError as exc:
            return ScrapeResult(
                requested_url=url, final_url=None, chain=(), ok=False,
                error=f"bad url: {exc.reason}",
            )
        if start in self._cache:
            self._metrics.counter(
                "web_resolve_total", "URL resolutions", outcome="cached"
            ).inc()
            return self._cache[start]
        result = self._resolve_chain(start)
        self._cache[start] = result
        metrics = self._metrics
        metrics.counter(
            "web_resolve_total", "URL resolutions",
            outcome="ok" if result.ok else "error",
        ).inc()
        if result.ok:
            metrics.histogram(
                "web_redirect_hops", "redirect-chain depth per resolved URL",
                buckets=DEFAULT_COUNT_BUCKETS,
            ).observe(result.hops)
        return result

    def _resolve_chain(self, start: str) -> ScrapeResult:
        chain: List[str] = [start]
        seen = {start}
        current = start
        for _hop in range(self._config.max_redirect_hops):
            try:
                self._metrics.counter(
                    "web_fetch_total", "page fetches issued by the scraper"
                ).inc()
                response = self._web.fetch(current)
            except FetchError as exc:
                return ScrapeResult(
                    requested_url=start, final_url=None,
                    chain=tuple(chain), ok=False, error=exc.reason,
                )
            target = self._next_target(response)
            if target is None:
                return ScrapeResult(
                    requested_url=start, final_url=current,
                    chain=tuple(chain), ok=True,
                )
            try:
                target = self._absolutize(current, target)
            except URLError as exc:
                return ScrapeResult(
                    requested_url=start, final_url=None,
                    chain=tuple(chain), ok=False,
                    error=f"bad redirect target: {exc.reason}",
                )
            if target in seen:
                return ScrapeResult(
                    requested_url=start, final_url=None,
                    chain=tuple(chain) + (target,), ok=False,
                    error="redirect loop",
                )
            seen.add(target)
            chain.append(target)
            current = target
        return ScrapeResult(
            requested_url=start, final_url=None, chain=tuple(chain),
            ok=False,
            error=f"redirect chain exceeded {self._config.max_redirect_hops} hops",
        )

    def _next_target(self, response: HTTPResponse) -> Optional[str]:
        """Where the browser goes next, or ``None`` if the page is final."""
        if response.is_redirect:
            return response.location
        if not response.ok:
            return None
        if not self._browser:
            return None
        if self._config.follow_meta_refresh:
            target = response.meta_refresh_target()
            if target:
                return target
        if self._config.execute_javascript:
            target = response.javascript_target()
            if target:
                return target
        return None

    @staticmethod
    def _absolutize(base: str, target: str) -> str:
        """Resolve a possibly-relative redirect target against *base*."""
        if "://" in target:
            return normalize_url(target)
        if target.startswith("/"):
            parsed = parse_url(base)
            return normalize_url(f"{parsed.scheme}://{parsed.host}{target}")
        # Bare-host targets ("www.example.com") occur in sloppy headers.
        return normalize_url(target)

    # -- bulk helpers -------------------------------------------------------

    def resolve_many(self, urls: Iterable[str]) -> Dict[str, ScrapeResult]:
        """Resolve many URLs; keyed by the *raw* input string."""
        results: Dict[str, ScrapeResult] = {}
        for raw in urls:
            results[raw] = self.resolve(raw)
        return results

    def stats(self) -> Dict[str, int]:
        resolved = list(self._cache.values())
        return {
            "resolved": len(resolved),
            "reachable": sum(1 for r in resolved if r.ok),
            "redirected": sum(1 for r in resolved if r.ok and r.redirected),
            "unique_final_urls": len(
                {r.final_url for r in resolved if r.final_url}
            ),
        }
