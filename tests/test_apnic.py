"""Unit tests for the APNIC-style population dataset."""

import pytest

from repro.apnic import ApnicDataset, PopulationRecord
from repro.errors import DataError


def make_dataset():
    return ApnicDataset(
        [
            PopulationRecord(asn=3320, country="DE", users=24_000_000),
            PopulationRecord(asn=6855, country="SK", users=2_000_000),
            PopulationRecord(asn=5391, country="HR", users=1_000_000),
            PopulationRecord(asn=21928, country="US", users=50_000_000),
            PopulationRecord(asn=21928, country="PR", users=1_500_000),
        ]
    )


class TestRecords:
    def test_negative_users_rejected(self):
        with pytest.raises(DataError):
            PopulationRecord(asn=1, country="US", users=-1).validate()

    def test_empty_country_rejected(self):
        with pytest.raises(DataError):
            PopulationRecord(asn=1, country="", users=5).validate()

    def test_duplicate_asn_country_rejected(self):
        dataset = make_dataset()
        with pytest.raises(DataError):
            dataset.add(PopulationRecord(asn=3320, country="DE", users=1))

    def test_same_asn_new_country_allowed(self):
        dataset = make_dataset()
        dataset.add(PopulationRecord(asn=3320, country="AT", users=10))
        assert dataset.users_of(3320) == 24_000_010


class TestQueries:
    def test_total_users(self):
        assert make_dataset().total_users == 78_500_000

    def test_users_of_multi_country_asn(self):
        assert make_dataset().users_of(21928) == 51_500_000

    def test_users_of_unknown_asn_is_zero(self):
        assert make_dataset().users_of(999) == 0

    def test_countries_of(self):
        assert make_dataset().countries_of(21928) == {"US", "PR"}

    def test_countries_of_excludes_zero_estimates(self):
        dataset = make_dataset()
        dataset.add(PopulationRecord(asn=5391, country="SI", users=0))
        assert dataset.countries_of(5391) == {"HR"}

    def test_users_of_group(self):
        # The Deutsche Telekom cluster.
        group = {3320, 6855, 5391, 21928}
        assert make_dataset().users_of_group(group) == 78_500_000

    def test_users_of_group_dedupes(self):
        assert make_dataset().users_of_group([3320, 3320]) == 24_000_000

    def test_countries_of_group(self):
        footprint = make_dataset().countries_of_group({3320, 21928})
        assert footprint == {"DE", "US", "PR"}

    def test_len_and_contains(self):
        dataset = make_dataset()
        assert len(dataset) == 5
        assert 3320 in dataset
        assert 999 not in dataset


class TestCSV:
    def test_round_trip(self, tmp_path):
        dataset = make_dataset()
        path = tmp_path / "pop.csv"
        dataset.save_csv(path)
        loaded = ApnicDataset.load_csv(path)
        assert loaded.total_users == dataset.total_users
        assert loaded.countries_of(21928) == {"US", "PR"}

    def test_bad_header_rejected(self):
        with pytest.raises(DataError):
            ApnicDataset.from_csv("a,b,c\n1,US,5\n")

    def test_bad_row_rejected(self):
        with pytest.raises(DataError):
            ApnicDataset.from_csv("asn,country,users\nxx,US,5\n")

    def test_blank_rows_skipped(self):
        dataset = ApnicDataset.from_csv("asn,country,users\n\n1,US,5\n")
        assert dataset.total_users == 5
