"""Tests for the longitudinal (organizational-evolution) extension."""

import pytest

from repro.core.mapping import OrgMapping
from repro.longitudinal import (
    build_snapshot_series,
    detect_merges,
    run_longitudinal_study,
)
from repro.universe.canonical import (
    AS_CENTURYLINK,
    AS_CLEARWIRE,
    AS_LUMEN,
    AS_TMOBILE_US,
)


@pytest.fixture(scope="module")
def series(universe):
    return build_snapshot_series(universe)


@pytest.fixture(scope="module")
def report(series):
    return run_longitudinal_study(series)


class TestSnapshotSeries:
    def test_years_ascending(self, series):
        assert series.years == sorted(series.years)

    def test_pending_acquisitions_decrease(self, series):
        pending = [len(s.pending_brand_ids) for s in series.snapshots]
        assert pending == sorted(pending, reverse=True)
        assert pending[-1] == 0  # the present: everything completed

    def test_asn_universe_constant(self, series, universe):
        for snapshot in series.snapshots:
            assert snapshot.whois.asns() == universe.whois.asns()

    def test_final_snapshot_matches_present(self, series, universe):
        final = series.final()
        assert final.whois.members() == universe.whois.members()
        assert final.pdb.stats() == universe.pdb.stats()

    def test_ground_truth_splits_pending_brands(self, series, universe):
        earliest = series.snapshots[0]
        assert len(earliest.ground_truth) >= len(universe.ground_truth)
        # Every pending brand is its own org in the early truth.
        for brand_id in earliest.pending_brand_ids:
            brand = next(
                b for b in universe.ground_truth.all_brands()
                if b.brand_id == brand_id
            )
            early_org = earliest.ground_truth.org_of_asn(brand.primary_asn)
            assert set(early_org.asns) == set(brand.asns)

    def test_pending_sites_do_not_redirect(self, series, universe):
        earliest = series.snapshots[0]
        for brand_id in earliest.pending_brand_ids:
            brand = next(
                b for b in universe.ground_truth.all_brands()
                if b.brand_id == brand_id
            )
            if not brand.website_host:
                continue
            site = earliest.web.site_for(f"https://{brand.website_host}/")
            assert site is not None
            assert site.redirect_target == ""

    def test_stale_notes_scrubbed(self, series, universe):
        earliest = series.snapshots[0]
        pending_asns = set()
        for brand_id in earliest.pending_brand_ids:
            brand = next(
                b for b in universe.ground_truth.all_brands()
                if b.brand_id == brand_id
            )
            pending_asns.update(brand.asns)
        for net in earliest.pdb.networks():
            if net.asn in pending_asns:
                continue
            for asn in pending_asns:
                assert f"AS{asn}" not in net.notes
                assert f"AS{asn}" not in net.aka


class TestClearwireHistory:
    """The Fig. 5b story in time: Clearwire joins T-Mobile only in 2020."""

    def test_clearwire_independent_early(self, report, series):
        early = report.results[0]
        if early.year < 2020:
            assert not early.mapping.are_siblings(AS_CLEARWIRE, AS_TMOBILE_US)

    def test_clearwire_joined_in_the_present(self, report):
        final = report.results[-1]
        assert final.mapping.are_siblings(AS_CLEARWIRE, AS_TMOBILE_US)

    def test_lumen_centurylink_timeline(self, report):
        # Acquired 2016: separate before, together after.
        for result in report.results:
            together = result.mapping.are_siblings(AS_LUMEN, AS_CENTURYLINK)
            if result.year >= 2017:
                assert together
            if result.year < 2016:
                assert not together


class TestEvolutionReport:
    def test_theta_nondecreasing_over_time(self, report):
        thetas = [r.theta for r in report.results]
        assert all(b >= a - 1e-9 for a, b in zip(thetas, thetas[1:]))

    def test_org_count_nonincreasing(self, report):
        counts = [r.org_count for r in report.results]
        assert all(b <= a for a, b in zip(counts, counts[1:]))

    def test_merges_detected(self, report):
        assert report.merges
        for event in report.merges:
            assert len(event.prior_components) >= 2
            assert event.year_from < event.year_to

    def test_series_accessors(self, report):
        years, thetas = report.theta_series()
        assert len(years) == len(thetas) == len(report.results)


class TestDetectMerges:
    def test_simple_merge(self):
        earlier = OrgMapping(universe=[1, 2, 3, 4], clusters=[{1, 2}])
        later = OrgMapping(universe=[1, 2, 3, 4], clusters=[{1, 2, 3}])
        events = detect_merges(earlier, later, 2019, 2020)
        assert len(events) == 1
        assert events[0].merged_cluster == frozenset({1, 2, 3})
        assert frozenset({1, 2}) in events[0].prior_components

    def test_no_change_no_events(self):
        mapping = OrgMapping(universe=[1, 2, 3], clusters=[{1, 2}])
        assert detect_merges(mapping, mapping, 2019, 2020) == []

    def test_new_asns_are_not_merges(self):
        earlier = OrgMapping(universe=[1, 2], clusters=[{1, 2}])
        later = OrgMapping(universe=[1, 2, 9], clusters=[{1, 2, 9}])
        assert detect_merges(earlier, later, 2019, 2020) == []
