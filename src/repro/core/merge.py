"""Cluster consolidation: merging partially overlapping organizations.

§4.1: "we consolidate partially overlapping clusters into a single
organization".  Implemented as a classic union-find over ASNs; any two
clusters sharing an ASN merge transitively, which is exactly the clique
semantics the Organization Factor graph assumes.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, TypeVar

from ..types import ASN, Cluster

T = TypeVar("T", bound=Hashable)


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def add(self, item: Hashable) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets holding *a* and *b*; returns the new root."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return root_a

    def connected(self, a: Hashable, b: Hashable) -> bool:
        if a not in self._parent or b not in self._parent:
            return False
        return self.find(a) == self.find(b)

    def groups(self) -> List[Set[Hashable]]:
        """All disjoint sets, deterministically ordered (largest first)."""
        by_root: Dict[Hashable, Set[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return sorted(
            by_root.values(), key=lambda group: (-len(group), min(map(repr, group)))
        )


def reduce_shard_clusters(
    shard_cluster_lists: Iterable[Iterable[Iterable[ASN]]],
) -> List[Cluster]:
    """The sharded pipeline's final reduce: union per-shard cluster lists.

    Union-find consolidation is associative and commutative, so merging
    each shard's already-consolidated clusters and then merging across
    shards yields exactly the clusters of one global merge — this is the
    algebraic fact that makes sharded execution exact rather than
    approximate.  When the partition is *closed* (no feature edge
    crosses shards — see :mod:`repro.core.partition`), the per-shard
    cluster sets are disjoint and this reduce is a plain concatenation;
    the union-find pass is kept as defense in depth so an imperfect
    partition degrades to correct-but-slower, never to wrong.
    """
    return merge_clusters(shard_cluster_lists)


def merge_clusters(cluster_lists: Iterable[Iterable[Iterable[ASN]]]) -> List[Cluster]:
    """Consolidate clusters from several features into one partition.

    Takes any number of cluster lists (one per feature) and returns the
    transitive closure: clusters sharing at least one ASN become one.
    """
    forest = UnionFind()
    for clusters in cluster_lists:
        for cluster in clusters:
            members = [int(a) for a in cluster]
            if not members:
                continue
            first = members[0]
            forest.add(first)
            for other in members[1:]:
                forest.union(first, other)
    return [frozenset(group) for group in forest.groups()]
