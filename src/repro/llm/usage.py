"""Token accounting for LLM usage.

A rough whitespace/length-based token estimator is enough offline: the
point is to report pipeline cost in the same unit the paper's OpenAI
bills would, and to let tests assert the NER input filter actually cuts
spend.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Average characters per BPE token for English-like text.
_CHARS_PER_TOKEN = 4.0


def estimate_tokens(text: str) -> int:
    """Estimate the BPE token count of *text* (≥1 for non-empty text)."""
    if not text:
        return 0
    return max(1, round(len(text) / _CHARS_PER_TOKEN))


@dataclass(frozen=True)
class TokenUsage:
    """Prompt/completion token tallies, addable across requests."""

    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def __add__(self, other: "TokenUsage") -> "TokenUsage":
        return TokenUsage(
            prompt_tokens=self.prompt_tokens + other.prompt_tokens,
            completion_tokens=self.completion_tokens + other.completion_tokens,
        )

    def cost_usd(
        self,
        prompt_per_million: float = 0.15,
        completion_per_million: float = 0.60,
    ) -> float:
        """Dollar cost at GPT-4o-mini-era prices (defaults, July 2024)."""
        return (
            self.prompt_tokens * prompt_per_million
            + self.completion_tokens * completion_per_million
        ) / 1_000_000.0
