"""Circuit breakers: fail fast when a dependency is down.

The classic three-state machine.  **Closed** passes calls through and
counts consecutive retryable failures; at ``failure_threshold`` it
**opens** and rejects calls outright (the caller sees
:class:`~repro.errors.CircuitOpenError` instead of burning retries
against a dead backend).  After ``recovery_seconds`` it lets a bounded
number of **half-open** probes through: one success re-closes, one
failure re-opens.  The clock is injectable so tests drive recovery
without sleeping.

:class:`BreakerRegistry` manages one breaker per key (per LLM backend,
per web host) with shared settings.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, TypeVar

from ..errors import CircuitOpenError, ConfigError
from ..obs.registry import MetricsRegistry, get_registry

T = TypeVar("T")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding of breaker states (``breaker_state`` metric).
STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """One dependency's health gate."""

    def __init__(
        self,
        name: str = "default",
        failure_threshold: int = 5,
        recovery_seconds: float = 30.0,
        half_open_max_calls: int = 1,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if recovery_seconds <= 0:
            raise ConfigError("recovery_seconds must be positive")
        if half_open_max_calls < 1:
            raise ConfigError("half_open_max_calls must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self.half_open_max_calls = half_open_max_calls
        self._clock = clock
        self._registry = registry
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_probes = 0
        self.rejections = 0

    @property
    def _metrics(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def state(self) -> str:
        self._poll()
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def _poll(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_seconds
        ):
            self._transition(HALF_OPEN)

    def _transition(self, to: str) -> None:
        self._state = to
        self._half_open_probes = 0
        if to == OPEN:
            self._opened_at = self._clock()
        elif to == CLOSED:
            self._consecutive_failures = 0
        metrics = self._metrics
        metrics.gauge(
            "breaker_state",
            "circuit state (0=closed, 1=half-open, 2=open)",
            breaker=self.name,
        ).set(STATE_VALUES[to])
        metrics.counter(
            "breaker_transitions_total", "circuit state transitions",
            breaker=self.name, to=to,
        ).inc()

    def allow(self) -> bool:
        """May a call proceed right now?  (Half-open admits bounded probes.)"""
        self._poll()
        if self._state == CLOSED:
            return True
        if self._state == OPEN:
            self.rejections += 1
            self._metrics.counter(
                "breaker_rejections_total", "calls rejected by an open circuit",
                breaker=self.name,
            ).inc()
            return False
        if self._half_open_probes < self.half_open_max_calls:
            self._half_open_probes += 1
            return True
        self.rejections += 1
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self._state == HALF_OPEN:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        self._poll()
        if self._state == HALF_OPEN:
            self._transition(OPEN)
        elif (
            self._state == CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._transition(OPEN)

    def call(self, fn: Callable[[], T]) -> T:
        """Guarded invocation: gate, run, and record in one step."""
        if not self.allow():
            raise CircuitOpenError(self.name)
        try:
            result = fn()
        except Exception as exc:
            if getattr(exc, "retryable", False):
                self.record_failure()
            raise
        self.record_success()
        return result


class BreakerRegistry:
    """Per-key breakers (per backend, per host) with shared settings."""

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_seconds: float = 30.0,
        half_open_max_calls: int = 1,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
        prefix: str = "breaker",
    ) -> None:
        self._settings = dict(
            failure_threshold=failure_threshold,
            recovery_seconds=recovery_seconds,
            half_open_max_calls=half_open_max_calls,
        )
        self._clock = clock
        self._registry = registry
        self._prefix = prefix
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, key: str) -> CircuitBreaker:
        existing = self._breakers.get(key)
        if existing is None:
            existing = CircuitBreaker(
                name=f"{self._prefix}:{key}",
                clock=self._clock,
                registry=self._registry,
                **self._settings,
            )
            self._breakers[key] = existing
        return existing

    def states(self) -> Dict[str, str]:
        return {key: breaker.state for key, breaker in self._breakers.items()}

    def open_count(self) -> int:
        return sum(1 for state in self.states().values() if state != CLOSED)

    def __len__(self) -> int:
        return len(self._breakers)
