"""Unit tests for the classifier engine, error model, and simulated backend."""

import pytest

from repro.config import LLMConfig
from repro.errors import LLMBackendError
from repro.llm.classifier_engine import classify_group, decode_brand
from repro.llm.client import ChatMessage
from repro.llm.errors_model import ErrorInjector, stable_choice_index, stable_unit
from repro.llm.parsing import parse_extraction_reply
from repro.llm.prompts import render_classifier_messages, render_extraction_prompt
from repro.llm.simulated import SimulatedChatBackend, make_default_client
from repro.web.simweb import make_favicon


class TestClassifierEngine:
    def test_decode_brand(self):
        assert decode_brand(make_favicon("claro")) == "claro"
        assert decode_brand(b"random bytes") == ""

    def test_company_with_matching_domains(self):
        answer = classify_group(
            make_favicon("claro"),
            ["https://www.clarochile.cl/", "https://www.claro.com.pe/"],
        )
        assert answer.is_company
        assert "Claro" in answer.reply

    def test_framework_rejected(self):
        answer = classify_group(
            make_favicon("bootstrap-default"),
            ["https://www.anosbd.com/", "https://www.rptechzone.in/"],
        )
        assert not answer.is_company
        assert answer.reply == "Bootstrap"

    def test_template_family_rejected(self):
        answer = classify_group(
            make_favicon("webtemplate3-default"),
            ["https://a.example.com/", "https://b.example.com/"],
        )
        assert not answer.is_company

    def test_unknown_icon(self):
        answer = classify_group(b"???", ["https://a.example.com/"])
        assert not answer.is_company

    def test_zero_affinity_multiple_domains_unknown(self):
        # The DE-CIX failure mode: brand icon, totally unrelated domains.
        answer = classify_group(
            make_favicon("decix"),
            ["https://www.aqaba-ix.jo/", "https://www.ruhr-cix.de/"],
        )
        assert not answer.is_company
        assert answer.reply == "I don't know"

    def test_partial_affinity_accepted(self):
        answer = classify_group(
            make_favicon("telekom"),
            ["https://www.telekom.de/", "https://www.t.ht.hr/"],
        )
        assert answer.is_company


class TestErrorInjector:
    def test_stable_unit_deterministic(self):
        assert stable_unit(1, "a", 2) == stable_unit(1, "a", 2)

    def test_stable_unit_varies_with_identity(self):
        values = {stable_unit(1, "a", i) for i in range(50)}
        assert len(values) == 50

    def test_stable_unit_in_range(self):
        for i in range(100):
            assert 0.0 <= stable_unit(7, i) < 1.0

    def test_stable_choice_index(self):
        index = stable_choice_index(1, 5, "x")
        assert 0 <= index < 5
        assert index == stable_choice_index(1, 5, "x")

    def test_choice_rejects_empty(self):
        with pytest.raises(ValueError):
            stable_choice_index(1, 0)

    def test_rates_respected_roughly(self):
        injector = ErrorInjector(seed=3, rates={"slip": 0.1})
        hits = sum(injector.should("slip", i) for i in range(5000))
        assert 350 < hits < 650  # 10% ± wide tolerance

    def test_zero_rate_never_fires(self):
        injector = ErrorInjector(seed=3, rates={"slip": 0.0})
        assert not any(injector.should("slip", i) for i in range(100))

    def test_one_rate_always_fires(self):
        injector = ErrorInjector(seed=3, rates={"slip": 1.0})
        assert all(injector.should("slip", i) for i in range(10))

    def test_kinds_independent(self):
        injector = ErrorInjector(seed=3, rates={"a": 0.5, "b": 0.5})
        outcomes_a = [injector.should("a", i) for i in range(200)]
        outcomes_b = [injector.should("b", i) for i in range(200)]
        assert outcomes_a != outcomes_b

    def test_pick_deterministic(self):
        injector = ErrorInjector(seed=3, rates={})
        options = (10, 20, 30)
        assert injector.pick("k", options, "id") == injector.pick("k", options, "id")


class TestSimulatedBackend:
    def test_extraction_round_trip(self):
        client = make_default_client()
        prompt = render_extraction_prompt(
            3320, "Our sibling networks: AS6855 and AS5391.", ""
        )
        parsed = parse_extraction_reply(client.ask(prompt))
        assert parsed.sibling_asns == (5391, 6855)

    def test_extraction_empty_fields(self):
        client = make_default_client()
        prompt = render_extraction_prompt(1, "", "")
        parsed = parse_extraction_reply(client.ask(prompt))
        assert parsed.sibling_asns == ()

    def test_classifier_round_trip(self):
        client = make_default_client()
        messages = render_classifier_messages(
            ["https://www.clarochile.cl/", "https://www.claro.com.pe/"],
            make_favicon("claro"),
        )
        assert "laro" in client.chat(messages).content

    def test_classifier_framework_round_trip(self):
        client = make_default_client()
        messages = render_classifier_messages(
            ["https://www.anosbd.com/", "https://www.rptechzone.in/"],
            make_favicon("wordpress-default"),
        )
        assert client.chat(messages).content == "WordPress"

    def test_unknown_prompt_rejected(self):
        backend = SimulatedChatBackend()
        with pytest.raises(LLMBackendError):
            backend.complete(
                [ChatMessage(role="user", content="What is BGP?")], LLMConfig()
            )

    def test_classifier_without_image_rejected(self):
        backend = SimulatedChatBackend()
        message = ChatMessage(
            role="user",
            content="Accessing these URLs ['https://a.example.com/'] "
            "returned the attached favicon.",
        )
        with pytest.raises(LLMBackendError):
            backend.complete([message], LLMConfig())

    def test_determinism_across_instances(self):
        prompt = render_extraction_prompt(9, "sister network AS71000", "")
        first = make_default_client().ask(prompt)
        second = make_default_client().ask(prompt)
        assert first == second

    def test_oracle_mode_never_errs(self):
        config = LLMConfig(extraction_error_rate=0.0, classifier_error_rate=0.0)
        client = make_default_client(config)
        # Decoy-laden prompt: an oracle must not misread the phone number.
        prompt = render_extraction_prompt(
            1, "sister network AS71000. NOC phone: +1 555 0123.", ""
        )
        parsed = parse_extraction_reply(client.ask(prompt))
        assert parsed.sibling_asns == (71000,)

    def test_error_injection_measurable_at_high_rate(self):
        config = LLMConfig(extraction_error_rate=1.0)
        client = make_default_client(config)
        # The drop slip fires at the full rate: exactly one of the two
        # reported siblings must be omitted for every record.
        decoy_hits = 0
        drop_survived = 0
        for asn in range(2, 30):
            prompt = render_extraction_prompt(
                asn, "sister networks AS71000 and AS71800. Founded in 1998.", ""
            )
            parsed = parse_extraction_reply(client.ask(prompt))
            found = set(parsed.sibling_asns) & {71000, 71800}
            # The drop slip removes one sibling; the upstream slip (0.4x
            # rate) may re-add an excluded token, so one or both appear.
            assert 1 <= len(found) <= 2
            if len(found) == 1:
                drop_survived += 1
            if 1998 in parsed.sibling_asns:
                decoy_hits += 1
        # The decoy slip fires at 0.3x the configured rate — a visible
        # fraction of records must pick up the 1998 decoy.
        assert decoy_hits >= 3
        # The drop must visibly remove a sibling for many records.
        assert drop_survived >= 10
