"""The publish gate: a new inference must earn the swap.

PARI's probabilistic framing of relationship inference makes the point
that matters here: a freshly derived mapping is a *hypothesis*, and a
hypothesis can be worse than the release it would replace — a upstream
feed truncated overnight, a feature degraded, an LLM backend started
hallucinating.  Publishing blindly turns any of those into user-visible
regressions.  The gate diffs every candidate against the active
generation and refuses the swap when the delta exceeds configured
thresholds:

* ``max_org_shrink`` / ``max_org_growth`` — fractional change in
  organization count (a mapping that lost a third of its orgs did not
  discover consolidation; it lost evidence);
* ``max_coverage_drop`` — fractional loss of ASN coverage (the universe
  should drift, not collapse);
* ``max_churn`` — fraction of common ASNs whose sibling set changed
  (WHOIS drifts a little per day, not 50%);
* ``min_precision`` — ground-truth precision floor, enforced only when
  the caller has ground truth to measure against.

The first generation (no active snapshot) always passes — there is
nothing to regress from.  A blocked candidate is an *event*, not an
error: the daemon journals it, emits ``watch.gate_blocked``, bumps the
metric, and keeps serving the old generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigError
from ..serve.index import MappingIndex
from .diff import GenerationDiff, diff_indexes


@dataclass(frozen=True)
class GateThresholds:
    """Regression limits a candidate must stay inside to publish."""

    max_org_shrink: float = 0.20
    max_org_growth: float = 0.50
    max_coverage_drop: float = 0.05
    max_churn: float = 0.35
    min_precision: float = 0.0

    def validate(self) -> "GateThresholds":
        for name in (
            "max_org_shrink",
            "max_org_growth",
            "max_coverage_drop",
            "max_churn",
        ):
            value = getattr(self, name)
            if not 0.0 <= value:
                raise ConfigError(f"{name} must be >= 0: {value}")
        if not 0.0 <= self.min_precision <= 1.0:
            raise ConfigError(
                f"min_precision out of [0,1]: {self.min_precision}"
            )
        return self

    def to_json(self) -> Dict[str, float]:
        return {
            "max_org_shrink": self.max_org_shrink,
            "max_org_growth": self.max_org_growth,
            "max_coverage_drop": self.max_coverage_drop,
            "max_churn": self.max_churn,
            "min_precision": self.min_precision,
        }


@dataclass(frozen=True)
class GateDecision:
    """The gate's verdict on one candidate, with its evidence."""

    allowed: bool
    reasons: tuple
    metrics: Dict[str, float]
    diff: Optional[GenerationDiff] = None

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "allowed": self.allowed,
            "reasons": list(self.reasons),
            "metrics": dict(self.metrics),
        }
        if self.diff is not None:
            out["diff"] = self.diff.to_json()
        return out


class PublishGate:
    """Evaluate candidate generations against the active one."""

    def __init__(self, thresholds: Optional[GateThresholds] = None) -> None:
        self.thresholds = (thresholds or GateThresholds()).validate()

    def evaluate(
        self,
        candidate: MappingIndex,
        active: Optional[MappingIndex],
        precision: Optional[float] = None,
    ) -> GateDecision:
        """The verdict for *candidate* vs *active* (``None`` = bootstrap).

        *precision* is the candidate's measured ground-truth precision
        when the operator has ground truth; ``None`` skips that check
        (absence of evidence is not a regression).
        """
        thresholds = self.thresholds
        reasons: List[str] = []
        metrics: Dict[str, float] = {
            "candidate_orgs": float(len(candidate)),
            "candidate_asns": float(candidate.asn_count),
        }
        if precision is not None:
            metrics["precision"] = precision
            if precision < thresholds.min_precision:
                reasons.append(
                    f"precision {precision:.4f} below floor "
                    f"{thresholds.min_precision:.4f}"
                )
        if active is None:
            return GateDecision(
                allowed=not reasons, reasons=tuple(reasons), metrics=metrics
            )

        diff = diff_indexes(active, candidate)
        metrics.update(
            {
                "active_orgs": float(len(active)),
                "active_asns": float(active.asn_count),
                "churn_fraction": diff.churn_fraction,
            }
        )
        if len(active):
            org_delta = (len(candidate) - len(active)) / len(active)
            metrics["org_delta_fraction"] = org_delta
            if org_delta < -thresholds.max_org_shrink:
                reasons.append(
                    f"org count shrank {-org_delta:.1%} "
                    f"(limit {thresholds.max_org_shrink:.1%})"
                )
            if org_delta > thresholds.max_org_growth:
                reasons.append(
                    f"org count grew {org_delta:.1%} "
                    f"(limit {thresholds.max_org_growth:.1%})"
                )
        if active.asn_count:
            coverage_delta = (
                candidate.asn_count - active.asn_count
            ) / active.asn_count
            metrics["coverage_delta_fraction"] = coverage_delta
            if coverage_delta < -thresholds.max_coverage_drop:
                reasons.append(
                    f"ASN coverage dropped {-coverage_delta:.1%} "
                    f"(limit {thresholds.max_coverage_drop:.1%})"
                )
        if diff.churn_fraction > thresholds.max_churn:
            reasons.append(
                f"churn {diff.churn_fraction:.1%} of common ASNs "
                f"(limit {thresholds.max_churn:.1%})"
            )
        return GateDecision(
            allowed=not reasons,
            reasons=tuple(reasons),
            metrics=metrics,
            diff=diff,
        )
