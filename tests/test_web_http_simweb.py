"""Unit tests for HTTP semantics and the simulated web registry."""

import pytest

from repro.errors import FetchError
from repro.web.http import (
    HTTPResponse,
    RedirectKind,
    make_redirect_response,
    render_page_body,
    render_redirect_body,
)
from repro.web.simweb import (
    SimulatedWeb,
    Site,
    favicon_hash,
    is_framework_favicon_brand,
    make_favicon,
)


class TestRedirectKind:
    def test_http_kinds(self):
        assert RedirectKind.HTTP_301.is_http
        assert RedirectKind.HTTP_302.is_http
        assert not RedirectKind.META_REFRESH.is_http

    def test_browser_only_kinds(self):
        assert RedirectKind.META_REFRESH.needs_browser
        assert RedirectKind.JAVASCRIPT.needs_browser
        assert not RedirectKind.HTTP_301.needs_browser


class TestHTTPResponse:
    def test_301_location(self):
        response = make_redirect_response(
            "http://a.example.com/", RedirectKind.HTTP_301, "http://b.example.com/"
        )
        assert response.status == 301
        assert response.is_redirect
        assert response.location == "http://b.example.com/"

    def test_meta_refresh_parsing(self):
        body = render_redirect_body(
            RedirectKind.META_REFRESH, "https://t.example.com/"
        )
        response = HTTPResponse(url="http://x.example.com/", status=200, body=body)
        assert response.meta_refresh_target() == "https://t.example.com/"
        assert response.browser_redirect_target() == "https://t.example.com/"

    def test_javascript_parsing(self):
        body = render_redirect_body(RedirectKind.JAVASCRIPT, "https://j.example.com/")
        response = HTTPResponse(url="http://x.example.com/", status=200, body=body)
        assert response.javascript_target() == "https://j.example.com/"

    def test_plain_page_has_no_redirect(self):
        response = HTTPResponse(
            url="http://x.example.com/", status=200,
            body=render_page_body("Welcome"),
        )
        assert response.ok
        assert response.browser_redirect_target() is None

    def test_render_redirect_body_rejects_http_kind(self):
        with pytest.raises(ValueError):
            render_redirect_body(RedirectKind.HTTP_301, "x")

    def test_make_redirect_rejects_none(self):
        with pytest.raises(ValueError):
            make_redirect_response("u", RedirectKind.NONE, "t")


class TestFavicons:
    def test_same_brand_same_bytes(self):
        assert make_favicon("claro") == make_favicon("claro")

    def test_different_brands_differ(self):
        assert make_favicon("claro") != make_favicon("orange")

    def test_hash_is_stable_and_short(self):
        digest = favicon_hash(make_favicon("claro"))
        assert digest == favicon_hash(make_favicon("claro"))
        assert len(digest) == 16

    def test_framework_brand_detection(self):
        assert is_framework_favicon_brand("bootstrap-default")
        assert is_framework_favicon_brand("webtemplate7-default")
        assert not is_framework_favicon_brand("claro")


class TestSimulatedWeb:
    def make_web(self):
        web = SimulatedWeb()
        web.add_page("https://www.lumen.com/", title="Lumen", favicon_brand="lumen")
        web.add_redirect(
            "https://www.centurylink.com/", "https://www.lumen.com/",
            kind=RedirectKind.HTTP_301,
        )
        web.add_page("https://dead.example.net/", alive=False)
        return web

    def test_fetch_landing_page(self):
        response = self.make_web().fetch("https://www.lumen.com/")
        assert response.ok
        assert "Lumen" in response.body

    def test_fetch_redirect(self):
        response = self.make_web().fetch("https://www.centurylink.com/")
        assert response.is_redirect
        assert response.location == "https://www.lumen.com/"

    def test_fetch_unknown_host_raises(self):
        with pytest.raises(FetchError):
            self.make_web().fetch("https://nxdomain.example.org/")

    def test_fetch_dead_site_raises(self):
        with pytest.raises(FetchError):
            self.make_web().fetch("https://dead.example.net/")

    def test_duplicate_host_rejected(self):
        web = self.make_web()
        with pytest.raises(ValueError):
            web.add_page("https://www.lumen.com/")

    def test_favicon_bytes(self):
        web = self.make_web()
        assert web.favicon_bytes("https://www.lumen.com/") == make_favicon("lumen")
        assert web.favicon_bytes("https://dead.example.net/") is None
        assert web.favicon_bytes("https://nxdomain.example.org/") is None

    def test_contains_and_len(self):
        web = self.make_web()
        assert "www.lumen.com" in web
        assert len(web) == 3

    def test_stats(self):
        web = self.make_web()
        web.fetch("https://www.lumen.com/")
        stats = web.stats()
        assert stats["hosts"] == 3
        assert stats["alive"] == 2
        assert stats["redirecting"] == 1
        assert stats["fetches"] == 1
