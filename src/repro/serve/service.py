"""The query service: cached, metered, admission-gated lookups.

:class:`QueryService` is the in-process read API the HTTP layer, the CLI
(``borges query``) and the load generator all share.  Per-endpoint
latency histograms use lookup-scale (sub-millisecond) buckets; metric
children are resolved once at construction so the per-request cost is a
dict hit, not a registry lock.  Responses are cached in a small LRU keyed
by ``(generation, endpoint, args)`` — a hot-swap changes the generation
and thereby invalidates the whole cache without any explicit flush.

When an :class:`~repro.serve.admission.AdmissionController` is attached,
every endpoint passes through it before touching the snapshot: saturated
load is shed with :class:`~repro.errors.OverloadedError` (HTTP 429) and
queue waits past the endpoint's deadline raise
:class:`~repro.errors.DeadlineExceededError` (HTTP 503).  Without one
(the default — CLI one-shots, benchmarks), the gate costs a single
``None`` check.  An optional
:class:`~repro.resilience.faults.FaultInjector` adds seeded serve-side
chaos: ``slow_read`` faults stall a request *while it holds its
admission slot*, which is exactly how slow clients starve real servers.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import nullcontext
from typing import ContextManager, Dict, Iterable, List, Optional, Tuple

from ..errors import (
    DeadlineExceededError,
    NoSnapshotError,
    OverloadedError,
    SnapshotIntegrityError,
    UnknownASNError,
    UnknownGenerationError,
    UnknownOrgError,
)
from ..obs import DEFAULT_LOOKUP_BUCKETS, get_registry
from ..obs.log import EventLog, get_event_log
from ..obs.slo import ExemplarStore, SLOTracker
from ..types import ASN
from .admission import AdmissionController
from .store import SnapshotStore

#: The endpoints the service meters; the HTTP layer maps routes onto them.
ENDPOINTS = ("asn", "org", "siblings", "search", "batch", "diff")

#: Per-endpoint request statuses tracked in ``serve_requests_total``.
STATUSES = ("ok", "not_found", "unavailable", "shed", "deadline")

#: Shared no-op gate for services without an admission controller — one
#: allocation for the process, not one per request.
_NULL_GATE: ContextManager[None] = nullcontext()


class _ResponseLRU:
    """Bounded (generation, endpoint, args) → response-dict cache."""

    __slots__ = ("_entries", "_max_entries", "hits", "misses")

    def __init__(self, max_entries: int) -> None:
        self._entries: "OrderedDict[tuple, dict]" = OrderedDict()
        self._max_entries = max(1, max_entries)
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Optional[dict]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, value: dict) -> None:
        self._entries[key] = value
        if len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }


class QueryService:
    """Answer ASN/org/sibling/search queries against a snapshot store."""

    def __init__(
        self,
        store: Optional[SnapshotStore] = None,
        registry=None,
        cache_size: int = 8192,
        admission: Optional[AdmissionController] = None,
        injector=None,
        slo: Optional[SLOTracker] = None,
        exemplars: Optional[ExemplarStore] = None,
        event_log: Optional[EventLog] = None,
        access_log_sample: float = 1.0,
    ) -> None:
        self.registry = registry or get_registry()
        self.admission = admission
        self._injector = injector
        self.slo = slo
        self.exemplars = exemplars
        self._event_log = event_log
        self.access_log_sample = access_log_sample
        self.store = store or SnapshotStore(
            registry=self.registry, injector=injector
        )
        self._cache = _ResponseLRU(cache_size)
        self._watch = None
        # Pre-resolved metric children: one registry round-trip at init
        # instead of one (lock + label sort) per request.
        self._latency = {
            endpoint: self.registry.histogram(
                "serve_request_seconds",
                "Query service latency per endpoint",
                buckets=DEFAULT_LOOKUP_BUCKETS,
                endpoint=endpoint,
            )
            for endpoint in ENDPOINTS
        }
        self._requests = {
            (endpoint, status): self.registry.counter(
                "serve_requests_total",
                "Query service requests by endpoint and status",
                endpoint=endpoint,
                status=status,
            )
            for endpoint in ENDPOINTS
            for status in STATUSES
        }
        self._cache_hits = self.registry.counter(
            "serve_cache_hits_total", "Response cache hits"
        )
        self._batch_sizes = self.registry.histogram(
            "serve_batch_size",
            "ASNs per batch lookup",
            buckets=(1.0, 2.0, 5.0, 10.0, 25.0, 100.0, 1000.0),
        )

    # -- plumbing ----------------------------------------------------------

    @property
    def event_log(self) -> EventLog:
        """The configured event log, defaulting to the process global."""
        return self._event_log if self._event_log is not None else get_event_log()

    def _finish(self, endpoint: str, status: str, started: float) -> None:
        elapsed = time.perf_counter() - started
        self._latency[endpoint].observe(elapsed)
        self._requests[(endpoint, status)].inc()
        if self.slo is not None:
            # A 404 is a correct answer; only shed/deadline/unavailable
            # count against availability.
            self.slo.record(ok=status in ("ok", "not_found"), latency=elapsed)

    def _annotate(self, response: dict, generation: int) -> dict:
        response["generation"] = generation
        if self.store.stale:
            response["stale"] = True
        return response

    def _admit(self, endpoint: str) -> ContextManager:
        """Pass the admission gate (and any injected stall) for *endpoint*.

        Returns the slot ticket to hold for the request's duration.
        Rejections are counted against the endpoint before re-raising so
        shed-vs-error behaviour is visible per route, not only in the
        gate-level totals.
        """
        if self.admission is None:
            if self._injector is not None:
                self._maybe_stall(endpoint)
            return _NULL_GATE
        try:
            ticket = self.admission.admit(endpoint)
        except OverloadedError:
            self._requests[(endpoint, "shed")].inc()
            if self.slo is not None:
                self.slo.record(ok=False, latency=0.0)
            raise
        except DeadlineExceededError:
            self._requests[(endpoint, "deadline")].inc()
            if self.slo is not None:
                self.slo.record(ok=False, latency=0.0)
            raise
        if self._injector is not None:
            # Stall while holding the slot — a slow reader occupies real
            # capacity, which is what makes the fault worth injecting.
            self._maybe_stall(endpoint)
        return ticket

    def _maybe_stall(self, endpoint: str) -> None:
        from ..resilience.faults import SERVE_SURFACE

        kind = self._injector.next_fault(SERVE_SURFACE, endpoint)
        if kind == "slow_read":
            time.sleep(self._injector.profile.slow_read_seconds)

    # -- endpoints ---------------------------------------------------------

    def lookup_asn(self, asn: ASN, gen: Optional[int] = None) -> dict:
        """Resolve one ASN to its organization (the hot path).

        With *gen*, answer from archived generation *gen* instead of the
        active snapshot (time-travel; lazily loaded, LRU-bounded).
        """
        if gen is not None:
            return self._lookup_asn_at(asn, gen)
        started = time.perf_counter()
        with self._admit("asn"):
            try:
                snapshot = self.store.current()
                key = (snapshot.generation, "asn", asn)
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache_hits.inc()
                    self._finish("asn", "ok", started)
                    return cached
                try:
                    record = snapshot.index.lookup_asn(asn)
                except UnknownASNError:
                    self._finish("asn", "not_found", started)
                    raise
                response = self._annotate(record.to_json(), snapshot.generation)
                self._cache.put(key, response)
                self._finish("asn", "ok", started)
                return response
            except NoSnapshotError:
                self._finish("asn", "unavailable", started)
                raise

    def batch_lookup(self, asns: Iterable[ASN]) -> List[dict]:
        """Resolve many ASNs against one pinned generation.

        Unknown ASNs yield ``{"asn": n, "error": "unknown_asn"}`` entries
        instead of failing the whole batch.
        """
        started = time.perf_counter()
        with self._admit("batch"):
            try:
                with self.store.acquire() as snapshot:
                    out: List[dict] = []
                    for asn in asns:
                        key = (snapshot.generation, "asn", asn)
                        cached = self._cache.get(key)
                        if cached is not None:
                            self._cache_hits.inc()
                            out.append(cached)
                            continue
                        try:
                            record = snapshot.index.lookup_asn(asn)
                        except UnknownASNError:
                            out.append({"asn": asn, "error": "unknown_asn"})
                            continue
                        response = self._annotate(
                            record.to_json(), snapshot.generation
                        )
                        self._cache.put(key, response)
                        out.append(response)
            except NoSnapshotError:
                self._finish("batch", "unavailable", started)
                raise
            self._batch_sizes.observe(float(len(out)))
            self._finish("batch", "ok", started)
            return out

    def lookup_org(self, org_id: str) -> dict:
        started = time.perf_counter()
        with self._admit("org"):
            try:
                snapshot = self.store.current()
                key = (snapshot.generation, "org", org_id)
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache_hits.inc()
                    self._finish("org", "ok", started)
                    return cached
                try:
                    record = snapshot.index.org(org_id)
                except UnknownOrgError:
                    self._finish("org", "not_found", started)
                    raise
                response = self._annotate(record.to_json(), snapshot.generation)
                self._cache.put(key, response)
                self._finish("org", "ok", started)
                return response
            except NoSnapshotError:
                self._finish("org", "unavailable", started)
                raise

    def siblings(self, a: ASN, b: Optional[ASN] = None) -> dict:
        """With *b*: are the two ASNs siblings?  Without: list *a*'s org."""
        started = time.perf_counter()
        with self._admit("siblings"):
            try:
                snapshot = self.store.current()
                index = snapshot.index
                if b is None:
                    try:
                        record = index.lookup_asn(a)
                    except UnknownASNError:
                        self._finish("siblings", "not_found", started)
                        raise
                    response = self._annotate(
                        {
                            "asn": a,
                            "org_id": record.org.org_id,
                            "siblings": [
                                m for m in record.org.members if m != a
                            ],
                        },
                        snapshot.generation,
                    )
                else:
                    response = self._annotate(
                        {"a": a, "b": b, "siblings": index.are_siblings(a, b)},
                        snapshot.generation,
                    )
                self._finish("siblings", "ok", started)
                return response
            except NoSnapshotError:
                self._finish("siblings", "unavailable", started)
                raise

    def search(self, query: str, limit: int = 10) -> dict:
        started = time.perf_counter()
        with self._admit("search"):
            try:
                snapshot = self.store.current()
                key = (snapshot.generation, "search", query, limit)
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache_hits.inc()
                    self._finish("search", "ok", started)
                    return cached
                records = snapshot.index.search(query, limit=limit)
                response = self._annotate(
                    {
                        "query": query,
                        "results": [r.to_json() for r in records],
                    },
                    snapshot.generation,
                )
                self._cache.put(key, response)
                self._finish("search", "ok", started)
                return response
            except NoSnapshotError:
                self._finish("search", "unavailable", started)
                raise

    # -- time travel -------------------------------------------------------

    def _lookup_asn_at(self, asn: ASN, gen: int) -> dict:
        """``/v1/asn?gen=N``: answer from an archived generation.

        Archive entries are immutable, so responses cache under the
        archive-generation key forever — a hot-swap never invalidates
        them and never needs to.
        """
        started = time.perf_counter()
        with self._admit("asn"):
            try:
                key = ("archive", gen, "asn", asn)
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache_hits.inc()
                    self._finish("asn", "ok", started)
                    return cached
                index = self.store.generation_index(gen)
                try:
                    record = index.lookup_asn(asn)
                except UnknownASNError:
                    self._finish("asn", "not_found", started)
                    raise
                response = record.to_json()
                response["generation"] = gen
                response["archived"] = True
                self._cache.put(key, response)
                self._finish("asn", "ok", started)
                return response
            except (UnknownGenerationError, SnapshotIntegrityError):
                # Unknown and corrupt-then-quarantined generations are
                # both "that release is not servable" — a client error,
                # not an outage.
                self._finish("asn", "not_found", started)
                raise
            except NoSnapshotError:
                self._finish("asn", "unavailable", started)
                raise

    def generation_diff(self, from_gen: int, to_gen: int) -> dict:
        """``/v1/diff?from=&to=``: orgs merged/split, ASNs moved.

        Both endpoints of the diff come from the immutable archive, so
        the response is cached under the (from, to) pair permanently.
        """
        from ..watch.diff import diff_indexes

        started = time.perf_counter()
        with self._admit("diff"):
            try:
                key = ("archive-diff", from_gen, to_gen)
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache_hits.inc()
                    self._finish("diff", "ok", started)
                    return cached
                old = self.store.generation_index(from_gen)
                new = self.store.generation_index(to_gen)
                diff = diff_indexes(old, new)
                response: Dict[str, object] = {
                    "from": from_gen,
                    "to": to_gen,
                }
                response.update(diff.to_json())
                self._cache.put(key, response)
                self._finish("diff", "ok", started)
                return response
            except (UnknownGenerationError, SnapshotIntegrityError):
                self._finish("diff", "not_found", started)
                raise
            except NoSnapshotError:
                self._finish("diff", "unavailable", started)
                raise

    # -- admin -------------------------------------------------------------

    def attach_watch(self, daemon) -> None:
        """Expose *daemon* (a :class:`~repro.watch.WatchDaemon`) on
        ``/v1/admin/watch`` and in health/stats bodies."""
        self._watch = daemon

    def watch_status(self) -> Optional[dict]:
        """The attached watch daemon's status, or ``None`` if detached."""
        if self._watch is None:
            return None
        return self._watch.status()

    def rollback(self) -> dict:
        """Restore the last-known-good generation (admin surface).

        Raises :class:`~repro.errors.RollbackUnavailableError` when the
        history is empty; rollbacks are never admission-gated — shedding
        the repair action during an overload would be self-defeating.
        """
        snapshot = self.store.rollback()
        return {
            "generation": snapshot.generation,
            "restored": snapshot.label,
            "orgs": len(snapshot.index),
            "asns": snapshot.index.asn_count,
        }

    # -- health / accounting ----------------------------------------------

    def health(self) -> Tuple[bool, dict]:
        """(ready, body) for ``/healthz``: 503 until a snapshot loads."""
        snapshot = self.store.current_or_none()
        if snapshot is None:
            return False, {"status": "unavailable"}
        status = "degraded" if self.store.stale else "ok"
        body: Dict[str, object] = {
            "status": status,
            "generation": snapshot.generation,
            "orgs": len(snapshot.index),
            "asns": snapshot.index.asn_count,
            "rollback_generations": len(self.store.history()),
            "stale": self.store.stale,
            "swap_failures": self.store.swap_failures,
            "rollback_count": self.store.rollback_count,
        }
        if self.store.last_swap_error:
            body["last_swap_error"] = self.store.last_swap_error
        if self._watch is not None:
            watch = self._watch.status()
            body["watch"] = {
                "running": watch.get("running", False),
                "halted": watch.get("halted", False),
                "consecutive_failures": watch.get("consecutive_failures", 0),
            }
            posture = watch.get("last_shard_posture")
            if posture:
                body["watch"]["shard_posture"] = posture
        if self.admission is not None:
            body["admission"] = self.admission.occupancy()
        if self.slo is not None:
            # Alert posture only — /v1/admin/slo has the full windows.
            body["slo"] = self.slo.alerts()
        return True, body

    def stats(self) -> Dict[str, object]:
        totals: Dict[str, float] = {}
        for (endpoint, status), counter in self._requests.items():
            if counter.value:
                totals[f"{endpoint}.{status}"] = counter.value
        # Per-endpoint latency rollups straight off the histograms — the
        # same quantile estimator the load generator summarises with.
        latency: Dict[str, Dict[str, float]] = {}
        for endpoint, histogram in self._latency.items():
            if histogram.count:
                summary = histogram.summary()
                latency[endpoint] = {
                    "count": int(summary["count"]),
                    "mean_us": round(summary["mean"] * 1e6, 3),
                    "p50_us": round(summary["p50"] * 1e6, 3),
                    "p90_us": round(summary["p90"] * 1e6, 3),
                    "p99_us": round(summary["p99"] * 1e6, 3),
                }
        out: Dict[str, object] = {
            "snapshot": self.store.stats(),
            "requests": totals,
            "latency_summary": latency,
            "response_cache": self._cache.stats(),
        }
        if self.admission is not None:
            out["admission"] = self.admission.occupancy()
        if self.slo is not None:
            out["slo"] = self.slo.snapshot()
        if self.exemplars is not None:
            out["exemplars"] = self.exemplars.stats()
        if self._watch is not None:
            out["watch"] = self._watch.status()
        return out
