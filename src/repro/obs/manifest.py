"""Run manifests: one JSON document describing everything a run did.

The manifest is the unit of comparability across runs — the discipline
AS2Org-style longitudinal studies apply to snapshots, applied to our own
pipeline: a config fingerprint says *what* ran, the span tree says *how
long each stage took*, the metric dump and LLM section say *what it
cost*, and the feature/org counts say *what it produced*.  Benchmarks
and the CLI (``--telemetry-out``) write one per run so BENCH trajectories
carry stage-level timing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from pathlib import Path
from typing import Dict, Optional, Union

from .registry import MetricsRegistry, get_registry
from .tracer import Tracer, get_tracer

MANIFEST_SCHEMA_VERSION = 1


def _jsonable(value: object) -> object:
    """Coerce config values (frozensets, tuples, dataclasses) to JSON."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (frozenset, set)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


def config_fingerprint(config: object) -> str:
    """Stable sha256 over a config dataclass's canonical JSON form."""
    canonical = json.dumps(_jsonable(config), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _llm_section(client) -> Dict[str, object]:
    usage = client.total_usage
    section: Dict[str, object] = {
        "backend": client.backend_name,
        "model": client.config.model,
        "requests": client.request_count,
        "prompt_tokens": usage.prompt_tokens,
        "completion_tokens": usage.completion_tokens,
        "total_tokens": usage.total_tokens,
        "cost_usd": round(usage.cost_usd(), 6),
    }
    cache_stats = client.cache_stats()
    lookups = cache_stats["hits"] + cache_stats["misses"]
    section["cache"] = dict(
        cache_stats,
        hit_rate=(cache_stats["hits"] / lookups) if lookups else 0.0,
    )
    return section


def _feature_section(result, tracer: Optional[Tracer]) -> Dict[str, object]:
    features: Dict[str, object] = {}
    durations: Dict[str, float] = {}
    if tracer is not None:
        for span in tracer.all_spans():
            if span.name.startswith("feature.") and span.finished:
                durations[span.name[len("feature."):]] = span.duration
    for name, feature in sorted(result.features.items()):
        features[name] = {
            "clusters": len(feature.clusters),
            "asns": feature.asn_count,
            "orgs": feature.org_count,
            "duration_seconds": durations.get(name),
        }
    return features


def build_manifest(
    *,
    config: Optional[object] = None,
    result=None,
    client=None,
    service=None,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    slo=None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble a manifest from whatever run artifacts are available.

    Every argument is optional so partial runs (a bare experiment, a
    bench that never touched the LLM) still export spans and metrics.
    """
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else get_registry()
    manifest: Dict[str, object] = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "created_at": time.time(),
    }
    if config is not None:
        manifest["config"] = {
            "fingerprint": config_fingerprint(config),
            "values": _jsonable(config),
        }
    if client is not None:
        manifest["llm"] = _llm_section(client)
    if service is not None:
        # Read-path accounting: when a QueryService ran in-process (the
        # serve/query subcommands, the smoke job), its request counters,
        # cache stats and snapshot generation ride in the same manifest
        # as the write-path stages.
        manifest["serve"] = _jsonable(service.stats())
    if slo is not None:
        # SLO posture at export time: burn rates per window and the
        # firing/clear state of each objective's alert.
        manifest["slo"] = _jsonable(slo.snapshot())
    if result is not None:
        manifest["features"] = _feature_section(result, tracer)
        stage_records = getattr(result, "stage_records", None)
        if stage_records:
            # Per-stage execution accounting: status (ok/cached/failed/
            # skipped), cache source, and artifact fingerprint — this is
            # what makes a cached run distinguishable from a live one in
            # ``borges telemetry``.
            manifest["stages"] = _jsonable(stage_records)
        manifest["org_count"] = len(result.mapping)
        manifest["degraded"] = bool(getattr(result, "degraded", False))
        feature_errors = getattr(result, "feature_errors", None)
        if feature_errors:
            manifest["feature_errors"] = _jsonable(feature_errors)
        if result.diagnostics:
            manifest["diagnostics"] = _jsonable(result.diagnostics)
    manifest["spans"] = tracer.to_dicts()
    manifest["metrics"] = registry.snapshot()
    if extra:
        manifest.update(_jsonable(extra))
    return manifest


def write_manifest(
    path: Union[str, Path], manifest: Dict[str, object]
) -> Path:
    """Write *manifest* as pretty JSON; returns the resolved path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


def load_manifest(path: Union[str, Path]) -> Dict[str, object]:
    return json.loads(Path(path).read_text(encoding="utf-8"))
