"""The Organization Factor graph, as an actual graph.

§5.4 defines θ over a graph G = (V, E): vertices are all WHOIS-delegated
networks, and each organization forms a clique.  This module materializes
that graph with :mod:`networkx` — for interoperability (researchers can
join it with AS-relationship graphs), for graph-theoretic sanity checks
(components ↔ organizations), and for an independent θ computation that
cross-validates the fast size-vector implementation.
"""

from __future__ import annotations

from typing import Dict

import networkx as nx

from ..core.mapping import OrgMapping
from ..types import ASN
from .org_factor import org_factor


def mapping_to_graph(mapping: OrgMapping) -> "nx.Graph":
    """Build the §5.4 clique graph of one mapping.

    Every ASN is a node (singletons included); each organization's
    members form a clique; no edges cross organizations.  Node attribute
    ``org`` carries the organization index, ``org_name`` its display name.
    """
    graph = nx.Graph()
    for index, cluster in enumerate(mapping.clusters()):
        members = sorted(cluster)
        name = mapping.org_name_of(members[0])
        for asn in members:
            graph.add_node(asn, org=index, org_name=name)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                graph.add_edge(a, b)
    return graph


def graph_org_factor(graph: "nx.Graph", normalization: str = "normalized") -> float:
    """θ computed from a clique graph's connected components.

    Independent of :func:`repro.metrics.org_factor.org_factor_from_mapping`
    — used in tests to cross-validate the two paths.
    """
    sizes = [len(component) for component in nx.connected_components(graph)]
    return org_factor(sizes, normalization=normalization)


def graph_stats(graph: "nx.Graph") -> Dict[str, float]:
    """Clique-graph summary: the quantities the θ construction implies."""
    components = [len(c) for c in nx.connected_components(graph)]
    n = graph.number_of_nodes()
    return {
        "nodes": float(n),
        "edges": float(graph.number_of_edges()),
        "organizations": float(len(components)),
        "largest_organization": float(max(components)) if components else 0.0,
        # Each org is a clique: the edge count must be Σ s(s-1)/2.
        "expected_clique_edges": float(
            sum(s * (s - 1) // 2 for s in components)
        ),
    }


def is_valid_clique_graph(graph: "nx.Graph") -> bool:
    """Check the §5.4 structural invariant: every component is a clique."""
    for component in nx.connected_components(graph):
        size = len(component)
        subgraph = graph.subgraph(component)
        if subgraph.number_of_edges() != size * (size - 1) // 2:
            return False
    return True
