"""Unit tests for the WHOIS substrate: models, dataset, CAIDA file format."""

import pytest

from repro.errors import SchemaError, SnapshotError, UnknownASNError
from repro.whois import (
    ASNDelegation,
    WhoisDataset,
    WhoisOrg,
    load_as2org_file,
    save_as2org_file,
)


def make_dataset():
    orgs = [
        WhoisOrg(org_id="LVLT-ARIN", name="Level 3 Parent, LLC", country="US"),
        WhoisOrg(org_id="CL-ARIN", name="CenturyLink", country="US"),
        WhoisOrg(org_id="DTAG-RIPE", name="Deutsche Telekom", country="DE",
                 source="ripencc"),
    ]
    delegations = [
        ASNDelegation(asn=3356, org_id="LVLT-ARIN", name="LEVEL3"),
        ASNDelegation(asn=3549, org_id="LVLT-ARIN", name="GBLX"),
        ASNDelegation(asn=209, org_id="CL-ARIN", name="CENTURYLINK"),
        ASNDelegation(asn=3320, org_id="DTAG-RIPE", name="DTAG",
                      source="ripencc"),
    ]
    return WhoisDataset.build(orgs, delegations)


class TestModels:
    def test_org_requires_known_rir(self):
        with pytest.raises(SchemaError):
            WhoisOrg(org_id="X", name="X", source="marsnic").validate()

    def test_org_requires_id_and_name(self):
        with pytest.raises(SchemaError):
            WhoisOrg(org_id="", name="X").validate()
        with pytest.raises(SchemaError):
            WhoisOrg(org_id="X", name="").validate()

    def test_delegation_requires_valid_asn(self):
        with pytest.raises(SchemaError):
            ASNDelegation(asn=23456, org_id="X").validate()

    def test_org_json_round_trip(self):
        org = WhoisOrg(org_id="A-ARIN", name="A", country="US")
        assert WhoisOrg.from_json(org.to_json()) == org

    def test_delegation_json_round_trip(self):
        delegation = ASNDelegation(asn=42, org_id="A", name="FORTY-TWO")
        assert ASNDelegation.from_json(delegation.to_json()) == delegation

    def test_delegation_json_uses_string_asn(self):
        # CAIDA's wire format carries ASNs as strings.
        assert ASNDelegation(asn=42, org_id="A").to_json()["asn"] == "42"


class TestDataset:
    def test_build_and_lookup(self):
        dataset = make_dataset()
        assert len(dataset) == 4
        assert dataset.org_id_of(3356) == "LVLT-ARIN"
        assert dataset.org_name_of(209) == "CenturyLink"

    def test_members_sorted(self):
        members = make_dataset().members()
        assert members["LVLT-ARIN"] == [3356, 3549]

    def test_siblings_of(self):
        assert make_dataset().siblings_of(3356) == {3356, 3549}

    def test_unknown_asn_raises(self):
        with pytest.raises(UnknownASNError):
            make_dataset().org_id_of(1)

    def test_duplicate_delegation_rejected(self):
        orgs = [WhoisOrg(org_id="A", name="A")]
        delegations = [
            ASNDelegation(asn=1, org_id="A"),
            ASNDelegation(asn=1, org_id="A"),
        ]
        with pytest.raises(SchemaError):
            WhoisDataset.build(orgs, delegations)

    def test_dangling_org_rejected(self):
        with pytest.raises(SchemaError):
            WhoisDataset.build([], [ASNDelegation(asn=1, org_id="GHOST")])

    def test_stats(self):
        stats = make_dataset().stats()
        assert stats["asns"] == 4
        assert stats["orgs"] == 3
        assert stats["max_asns_per_org"] == 2

    def test_restricted_to(self):
        restricted = make_dataset().restricted_to([3356, 3320])
        assert restricted.asns() == [3320, 3356]
        assert set(restricted.orgs) == {"LVLT-ARIN", "DTAG-RIPE"}


class TestAs2OrgFile:
    def test_round_trip(self, tmp_path):
        dataset = make_dataset()
        path = tmp_path / "as2org.jsonl"
        save_as2org_file(dataset, path)
        loaded = load_as2org_file(path)
        assert loaded.asns() == dataset.asns()
        assert loaded.org_name_of(3320) == "Deutsche Telekom"

    def test_gzip_round_trip(self, tmp_path):
        path = tmp_path / "as2org.jsonl.gz"
        save_as2org_file(make_dataset(), path)
        assert len(load_as2org_file(path)) == 4

    def test_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "file.jsonl"
        path.write_text(
            "# comment\n\n"
            '{"type": "Organization", "organizationId": "A", "name": "A", '
            '"source": "ARIN"}\n'
            '{"type": "ASN", "asn": "5", "organizationId": "A", '
            '"source": "ARIN"}\n'
        )
        assert load_as2org_file(path).asns() == [5]

    def test_unknown_record_type_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "Mystery"}\n')
        with pytest.raises(SchemaError):
            load_as2org_file(path)

    def test_bad_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{oops\n")
        with pytest.raises(SnapshotError):
            load_as2org_file(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_as2org_file(tmp_path / "nope.jsonl")
