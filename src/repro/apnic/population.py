"""Per-AS user population dataset (the APNIC estimates analogue).

One record per (ASN, country): APNIC's real dataset estimates users of an
AS per economy, which is what the country-footprint analysis (Table 9)
needs.  Aggregations by ASN and by arbitrary ASN groupings serve the
population analyses (Tables 7–8).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Set, Union

from ..errors import DataError
from ..types import ASN, CountryCode


@dataclass(frozen=True)
class PopulationRecord:
    """Estimated users of one AS in one country."""

    asn: ASN
    country: CountryCode
    users: int

    def validate(self) -> "PopulationRecord":
        if self.users < 0:
            raise DataError(f"AS{self.asn}/{self.country}: negative users")
        if not self.country:
            raise DataError(f"AS{self.asn}: empty country")
        return self


class ApnicDataset:
    """All population records, indexed by ASN."""

    def __init__(self, records: Iterable[PopulationRecord] = ()) -> None:
        self._by_asn: Dict[ASN, List[PopulationRecord]] = {}
        self._total = 0
        for record in records:
            self.add(record)

    def add(self, record: PopulationRecord) -> None:
        record.validate()
        bucket = self._by_asn.setdefault(record.asn, [])
        if any(r.country == record.country for r in bucket):
            raise DataError(
                f"duplicate population record for AS{record.asn}/{record.country}"
            )
        bucket.append(record)
        self._total += record.users

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_asn.values())

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn

    def asns(self) -> List[ASN]:
        return sorted(self._by_asn)

    def records(self) -> Iterator[PopulationRecord]:
        for asn in self.asns():
            for record in sorted(self._by_asn[asn], key=lambda r: r.country):
                yield record

    @property
    def total_users(self) -> int:
        """The global Internet population covered by the dataset."""
        return self._total

    def users_of(self, asn: ASN) -> int:
        """Total users of one AS across all countries (0 if unknown)."""
        return sum(r.users for r in self._by_asn.get(asn, ()))

    def countries_of(self, asn: ASN) -> Set[CountryCode]:
        """Countries where this AS has a non-zero user estimate."""
        return {r.country for r in self._by_asn.get(asn, ()) if r.users > 0}

    def users_of_group(self, asns: Iterable[ASN]) -> int:
        """Total users of an ASN group (an organization's population)."""
        return sum(self.users_of(asn) for asn in set(asns))

    def countries_of_group(self, asns: Iterable[ASN]) -> Set[CountryCode]:
        """Country footprint of an ASN group (Table 9's unit)."""
        footprint: Set[CountryCode] = set()
        for asn in set(asns):
            footprint |= self.countries_of(asn)
        return footprint

    # -- serialization (CSV, like APNIC's published tables) ----------------

    CSV_HEADER = ("asn", "country", "users")

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.CSV_HEADER)
        for record in self.records():
            writer.writerow((record.asn, record.country, record.users))
        return buffer.getvalue()

    def save_csv(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_csv(), encoding="utf-8")

    @classmethod
    def from_csv(cls, text: str) -> "ApnicDataset":
        reader = csv.reader(io.StringIO(text))
        header = next(reader, None)
        if header is None or tuple(header) != cls.CSV_HEADER:
            raise DataError(f"bad APNIC CSV header: {header!r}")
        dataset = cls()
        for row in reader:
            if not row:
                continue
            try:
                dataset.add(
                    PopulationRecord(
                        asn=int(row[0]), country=row[1], users=int(row[2])
                    )
                )
            except (IndexError, ValueError) as exc:
                raise DataError(f"bad APNIC CSV row {row!r}: {exc}") from exc
        return dataset

    @classmethod
    def load_csv(cls, path: Union[str, Path]) -> "ApnicDataset":
        return cls.from_csv(Path(path).read_text(encoding="utf-8"))
