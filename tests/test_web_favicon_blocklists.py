"""Unit tests for the favicon API client and the Appendix-D blocklists."""

from repro.web.blocklists import (
    FINAL_URL_BLOCKLIST,
    SUBDOMAIN_BLOCKLIST,
    is_blocked_brand,
    is_blocked_final_url,
)
from repro.web.favicon import FaviconAPI
from repro.web.simweb import SimulatedWeb, make_favicon


def make_web():
    web = SimulatedWeb()
    web.add_page("https://www.clarochile.cl/", favicon_brand="claro")
    web.add_page("https://www.claropr.com/", favicon_brand="claro")
    web.add_page("https://www.orange.es/", favicon_brand="orange")
    web.add_page("https://noicon.example.com/")
    return web


class TestFaviconAPI:
    def test_fetch_returns_icon(self):
        api = FaviconAPI(make_web())
        record = api.fetch("https://www.orange.es/")
        assert record is not None
        assert record.content == make_favicon("orange")

    def test_fetch_none_for_missing_icon(self):
        api = FaviconAPI(make_web())
        assert api.fetch("https://noicon.example.com/") is None

    def test_fetch_none_for_unknown_host(self):
        api = FaviconAPI(make_web())
        assert api.fetch("https://ghost.example.com/") is None

    def test_fetch_none_for_bad_url(self):
        api = FaviconAPI(make_web())
        assert api.fetch("???") is None

    def test_per_host_caching(self):
        api = FaviconAPI(make_web())
        api.fetch("https://www.orange.es/")
        api.fetch("https://www.orange.es/other-page")
        assert api.request_count == 1

    def test_group_by_favicon(self):
        api = FaviconAPI(make_web())
        groups = api.group_by_favicon(
            [
                "https://www.clarochile.cl/",
                "https://www.claropr.com/",
                "https://www.orange.es/",
                "https://noicon.example.com/",
            ]
        )
        sizes = sorted(len(urls) for urls in groups.values())
        assert sizes == [1, 2]  # claro pair + orange alone; no-icon dropped

    def test_request_url_shape(self):
        api = FaviconAPI(make_web())
        url = api.request_url("https://www.orange.fr")
        assert "faviconV2" in url
        assert "www.orange.fr" in url


class TestBlocklists:
    def test_paper_table10_entries_present(self):
        for token in ("myspace", "github", "facebook", "peeringdb", "he"):
            assert token in SUBDOMAIN_BLOCKLIST

    def test_paper_table11_entries_present(self):
        for domain in (
            "example.com", "github.com", "linkedin.com",
            "facebook.com", "discord.com",
        ):
            assert domain in FINAL_URL_BLOCKLIST

    def test_blocked_final_url(self):
        assert is_blocked_final_url("https://github.com/someoperator")
        assert is_blocked_final_url("https://www.facebook.com/ispname")

    def test_unblocked_final_url(self):
        assert not is_blocked_final_url("https://www.lumen.com/")

    def test_blocked_brand(self):
        assert is_blocked_brand("https://www.facebook.com/x")
        assert is_blocked_brand("https://bgp.tools/as/3356")

    def test_unblocked_brand(self):
        assert not is_blocked_brand("https://www.orange.es/")

    def test_garbage_urls_treated_as_blocked(self):
        # Unparsable URLs must never become grouping evidence.
        assert is_blocked_final_url("http://bad host/path")
        assert is_blocked_brand("http://bad host/path")
