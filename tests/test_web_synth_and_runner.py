"""Coverage for web synthesis details and the experiment-context cache."""

import pytest

from repro.config import TEST_UNIVERSE, UniverseConfig
from repro.experiments.runner import _CONTEXT_CACHE, get_context
from repro.universe import generate_universe
from repro.universe.canonical import build_canonical_plan
from repro.universe.web_synth import _flagship_brand
from repro.web.http import RedirectKind
from repro.web.scraper import HeadlessScraper


class TestWebSynthesis:
    def test_acquired_brand_redirects_point_at_flagship(self, universe):
        """Every planted redirect inside an org lands on its flagship."""
        scraper = HeadlessScraper(universe.web)
        checked = 0
        for org in universe.ground_truth.conglomerates():
            if org.org_id.startswith("gt-"):
                continue  # canonical orgs use explicit multi-hop chains
            flagship = _flagship_brand(org)
            if flagship is None:
                continue
            for brand in org.brands:
                if brand is flagship or not brand.acquired:
                    continue
                site = universe.web.site_for(brand.website_url)
                if site is None or site.redirect_kind is RedirectKind.NONE:
                    continue
                assert site.redirect_target == flagship.website_url
                checked += 1
        assert checked > 0

    def test_flagship_prefers_non_acquired(self, universe):
        for org in universe.ground_truth.conglomerates():
            flagship = _flagship_brand(org)
            if flagship is None:
                continue
            if any(
                not b.acquired and b.website_host for b in org.brands
            ):
                assert not flagship.acquired

    def test_canonical_hosts_alive(self, universe):
        plan = build_canonical_plan()
        for host in plan.alive_hosts:
            site = universe.web.site_for(f"https://{host}/")
            assert site is not None and site.alive, host

    def test_platform_hosts_exist(self, universe):
        from repro.universe.names import PLATFORM_HOSTS

        for host in PLATFORM_HOSTS:
            assert host in universe.web

    def test_dead_site_rate_in_band(self, universe):
        stats = universe.web.stats()
        dead_fraction = 1 - stats["alive"] / stats["hosts"]
        # Config default 0.14, canonical hosts revived — broad band.
        assert 0.02 < dead_fraction < 0.30


class TestContextCache:
    def test_same_config_reuses_context(self):
        config = UniverseConfig(seed=991, n_organizations=60)
        first = get_context(config)
        second = get_context(config)
        assert first is second
        _CONTEXT_CACHE.pop((991, 60), None)

    def test_different_seed_builds_fresh(self):
        a = get_context(UniverseConfig(seed=992, n_organizations=60))
        b = get_context(UniverseConfig(seed=993, n_organizations=60))
        assert a is not b
        _CONTEXT_CACHE.pop((992, 60), None)
        _CONTEXT_CACHE.pop((993, 60), None)


class TestCanonicalPlanDetails:
    def test_every_canonical_brand_has_pdb_group(self):
        plan = build_canonical_plan()
        for org in plan.orgs:
            for brand in org.brands:
                assert brand.brand_id in plan.pdb_group, brand.brand_id

    def test_every_canonical_brand_has_whois_group(self):
        plan = build_canonical_plan()
        for org in plan.orgs:
            for brand in org.brands:
                assert brand.brand_id in plan.whois_group, brand.brand_id

    def test_notes_reference_member_asns(self):
        plan = build_canonical_plan()
        asns = set(plan.all_asns())
        for asn, synthesized in plan.notes.items():
            assert asn in asns
            for sibling in synthesized.true_siblings:
                assert sibling in asns

    def test_redirect_targets_resolvable(self, universe):
        plan = build_canonical_plan()
        scraper = HeadlessScraper(universe.web)
        for host in plan.redirects:
            result = scraper.resolve(f"https://{host}/")
            assert result.ok, (host, result.error)
