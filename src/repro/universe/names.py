"""Name corpora for the synthetic universe.

Deterministic word lists used to mint company names, brand tokens and
hostnames.  All names are invented (no real trademarks) except for the
handful of *canonical scenarios* the paper narrates (Lumen/CenturyLink,
Deutsche Telekom, Edgecast/Limelight, Clearwire, Claro...), which
:mod:`repro.universe.canonical` plants explicitly for tests and examples.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

#: Name stems combined into company names: "<stem> <suffix>".
COMPANY_STEMS: Tuple[str, ...] = (
    "Andes", "Aurora", "Baltic", "Borealis", "Caracol", "Cedro", "Colibri",
    "Condor", "Corsair", "Cumbre", "Delta", "Dorado", "Ecuator", "Ember",
    "Fjord", "Gaucho", "Glacial", "Harbor", "Horizonte", "Iberia", "Jacaranda",
    "Kodiak", "Lumina", "Magna", "Meridian", "Mistral", "Nevada", "Nimbus",
    "Oceana", "Pampa", "Pinnacle", "Quasar", "Riviera", "Sable", "Sierra",
    "Solaris", "Tundra", "Umbra", "Vertex", "Vortex", "Yunque", "Zephyr",
    "Altiplano", "Basalt", "Cardinal", "Drift", "Estuary", "Falcon", "Granite",
    "Helix", "Itaca", "Juniper", "Krill", "Lagoon", "Mangrove", "Nectar",
    "Onyx", "Prisma", "Quartz", "Reef", "Sequoia", "Talus", "Ultramar",
    "Vega", "Willow", "Xenon", "Ypsilon", "Zenith", "Arrecife", "Bruma",
)

#: Suffixes by organization category.
ACCESS_SUFFIXES: Tuple[str, ...] = (
    "Telecom", "Cable", "Fibra", "Broadband", "Net", "Wireless", "Movil",
    "Internet", "Comunicaciones", "Telekom", "Connect",
)
TRANSIT_SUFFIXES: Tuple[str, ...] = (
    "Carrier", "Backbone", "Transit", "Networks", "Global", "IP Services",
)
CONTENT_SUFFIXES: Tuple[str, ...] = (
    "Cloud", "CDN", "Media", "Hosting", "Platforms", "Streams", "Compute",
)

#: Regions with member countries and the ccTLDs their sites use.
REGIONS: Dict[str, Tuple[Tuple[str, str], ...]] = {
    "latam": (
        ("AR", "com.ar"), ("BR", "com.br"), ("CL", "cl"), ("CO", "com.co"),
        ("PE", "com.pe"), ("MX", "com.mx"), ("UY", "com.uy"), ("PY", "com.py"),
        ("EC", "com.ec"), ("BO", "com.bo"), ("DO", "com.do"), ("PR", "pr"),
        ("GT", "com.gt"), ("PA", "com.pa"), ("CR", "cr"), ("HN", "com.hn"),
    ),
    "europe": (
        ("DE", "de"), ("FR", "fr"), ("ES", "es"), ("IT", "it"), ("PL", "pl"),
        ("NL", "nl"), ("GB", "co.uk"), ("PT", "pt"), ("AT", "at"), ("CH", "ch"),
        ("SE", "se"), ("NO", "no"), ("CZ", "cz"), ("SK", "sk"), ("HR", "hr"),
        ("RO", "ro"), ("HU", "hu"), ("GR", "gr"),
    ),
    "apac": (
        ("JP", "co.jp"), ("KR", "co.kr"), ("TW", "com.tw"), ("SG", "com.sg"),
        ("MY", "com.my"), ("ID", "co.id"), ("PH", "com.ph"), ("VN", "com.vn"),
        ("AU", "com.au"), ("NZ", "co.nz"), ("IN", "co.in"), ("TH", "th"),
        ("HK", "com.hk"), ("BD", "com.bd"), ("LK", "com.lk"),
    ),
    "northam": (("US", "com"), ("CA", "ca")),
    "africa": (
        ("ZA", "co.za"), ("NG", "com.ng"), ("KE", "co.ke"), ("EG", "com.eg"),
        ("TZ", "co.tz"), ("GH", "com"), ("SN", "sn"), ("MA", "ma"),
    ),
    "mideast": (
        ("TR", "com.tr"), ("SA", "com.sa"), ("AE", "ae"), ("IL", "co.il"),
        ("JO", "jo"), ("QA", "qa"),
    ),
    "caribbean": (
        ("JM", "com"), ("TT", "tt"), ("BB", "bb"), ("HT", "ht"), ("BS", "bs"),
        ("GY", "gy"), ("SR", "sr"), ("LC", "lc"), ("VC", "vc"), ("GD", "gd"),
        ("AG", "ag"), ("DM", "dm"), ("KN", "kn"), ("AW", "aw"), ("CW", "cw"),
        ("BM", "bm"), ("KY", "ky"), ("TC", "tc"), ("VG", "vg"), ("AI", "ai"),
        ("MS", "ms"), ("BZ", "bz"), ("FJ", "com"), ("PG", "com"), ("VU", "com"),
    ),
}

ALL_REGIONS: Tuple[str, ...] = tuple(sorted(REGIONS))

#: Mainstream platforms small operators point their PDB website at
#: (the blocklists of Appendix D target exactly these).
PLATFORM_HOSTS: Tuple[str, ...] = (
    "www.facebook.com",
    "github.com",
    "www.linkedin.com",
    "discord.com",
    "www.instagram.com",
    "bgp.tools",
    "www.peeringdb.com",
)

#: Languages notes can be written in, with region affinities.
REGION_LANGUAGES: Dict[str, Tuple[str, ...]] = {
    "latam": ("es", "pt"),
    "europe": ("en", "de", "fr", "es"),
    "apac": ("en", "id"),
    "northam": ("en",),
    "africa": ("en", "fr"),
    "mideast": ("en",),
    "caribbean": ("en", "es"),
}


def pick_region(rng: random.Random) -> str:
    return rng.choice(ALL_REGIONS)


def pick_countries(
    rng: random.Random, region: str, count: int
) -> List[Tuple[str, str]]:
    """Pick *count* (country, cctld) pairs, spilling into neighbours."""
    pool = list(REGIONS[region])
    rng.shuffle(pool)
    picked = pool[:count]
    if len(picked) < count:
        others = [c for r in ALL_REGIONS if r != region for c in REGIONS[r]]
        rng.shuffle(others)
        for pair in others:
            if len(picked) >= count:
                break
            if pair not in picked:
                picked.append(pair)
    return picked[:count]


def language_for(rng: random.Random, region: str) -> str:
    return rng.choice(REGION_LANGUAGES.get(region, ("en",)))


class NameForge:
    """Mints unique, deterministic names from the corpora.

    A dedicated ``random.Random`` keeps name assignment independent of
    other generator draws, so adding an unrelated feature never reshuffles
    every company name.
    """

    #: Tokens that random orgs must never receive: canonical scenarios'
    #: brands and framework/platform identities live in these namespaces.
    RESERVED_TOKENS = frozenset(
        {
            "lumen", "centurylink", "telekom", "claro", "orange", "digicel",
            "tigo", "telkomid", "edgio", "latitude", "sprint", "clearwire",
            "facebook", "github", "linkedin", "discord", "instagram",
            "peeringdb", "bgp", "bootstrap", "wordpress", "godaddy",
            "ixcsoft", "wix", "akamai", "amazon", "apple", "google",
            "netflix", "yahoo", "ovh", "microsoft", "twitter", "twitch",
            "cloudflare", "booking", "spotify", "area1",
        }
    )

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(("names", seed).__repr__())
        self._used: set = set()
        self._used_tokens: set = set(self.RESERVED_TOKENS)

    def company_name(self, category: str) -> str:
        """A unique company name appropriate for *category*."""
        suffixes = {
            "access": ACCESS_SUFFIXES,
            "transit": TRANSIT_SUFFIXES,
            "content": CONTENT_SUFFIXES,
        }.get(category, ACCESS_SUFFIXES)
        for _ in range(10_000):
            stem = self._rng.choice(COMPANY_STEMS)
            suffix = self._rng.choice(suffixes)
            name = f"{stem} {suffix}"
            if name not in self._used:
                self._used.add(name)
                return name
            # Disambiguate deterministically once the simple space fills.
            numbered = f"{name} {self._rng.randint(2, 9999)}"
            if numbered not in self._used:
                self._used.add(numbered)
                return numbered
        raise RuntimeError("name corpus exhausted")

    def brand_token(self, company_name: str) -> str:
        """A unique DNS-safe brand token: "Vega Cable" → ``vega``.

        Brand tokens are what subsidiaries share in their domains
        (www.<brand>.<cctld>), mirroring the paper's orange.es/orange.pl.
        Tokens are globally unique — two real companies do not share a
        registrable brand — so hostname and favicon identities never
        collide across unrelated organizations.
        """
        words = [
            "".join(ch for ch in w.lower() if ch.isalnum())
            for w in company_name.split()
        ]
        words = [w for w in words if w]
        if not words:
            words = ["brand"]
        candidates = [words[0], "".join(words[:2]), "".join(words)]
        for candidate in candidates:
            if candidate and candidate not in self._used_tokens:
                self._used_tokens.add(candidate)
                return candidate
        base = candidates[-1] or "brand"
        for i in range(2, 100_000):
            candidate = f"{base}{i}"
            if candidate not in self._used_tokens:
                self._used_tokens.add(candidate)
                return candidate
        raise RuntimeError("brand token space exhausted")

    def pick_region(self) -> str:
        return pick_region(self._rng)

    def pick_countries(self, region: str, count: int) -> List[Tuple[str, str]]:
        """Pick *count* (country, cctld) pairs, spilling into neighbours."""
        return pick_countries(self._rng, region, count)

    def language_for(self, region: str) -> str:
        return language_for(self._rng, region)


class OrgNamer:
    """Per-organization name minting for streaming generation.

    Unlike :class:`NameForge` (one shared stream + a global used-set),
    an ``OrgNamer`` derives everything from ``(seed, org_index)``, so any
    organization's names can be regenerated without minting every
    preceding org first.  Global token uniqueness comes from structure
    instead of a shared set: every token carries the org index as a
    suffix (``vega17``, second brand ``cedro17b1``), and since stems are
    purely alphabetic the ``base + index [+ bN]`` form is injective.
    Reserved/canonical/framework tokens never end in a bare index digit
    run (the only reserved digit-bearing token is ``area1``, and its stem
    ``area`` is not in the corpus), so collisions are impossible.
    """

    def __init__(self, seed: object, index: int) -> None:
        self._rng = random.Random(repr(("names", seed, index)))
        self._index = index
        self._minted_tokens = 0

    def company_name(self, category: str) -> str:
        suffixes = {
            "access": ACCESS_SUFFIXES,
            "transit": TRANSIT_SUFFIXES,
            "content": CONTENT_SUFFIXES,
        }.get(category, ACCESS_SUFFIXES)
        stem = self._rng.choice(COMPANY_STEMS)
        suffix = self._rng.choice(suffixes)
        return f"{stem} {suffix}"

    def brand_token(self, company_name: str) -> str:
        words = [
            "".join(ch for ch in w.lower() if ch.isalnum())
            for w in company_name.split()
        ]
        words = [w for w in words if w]
        base = words[0] if words else "brand"
        ordinal = self._minted_tokens
        self._minted_tokens += 1
        if ordinal == 0:
            return f"{base}{self._index}"
        return f"{base}{self._index}b{ordinal}"

    def pick_region(self) -> str:
        return pick_region(self._rng)

    def pick_countries(self, region: str, count: int) -> List[Tuple[str, str]]:
        return pick_countries(self._rng, region, count)

    def language_for(self, region: str) -> str:
        return language_for(self._rng, region)
