"""Tests for the ASCII chart renderer used by figure experiments."""

from repro.experiments.report import Report, render_ascii_chart


class TestAsciiChart:
    def test_basic_shape(self):
        chart = render_ascii_chart([1, 2, 3, 4], [1, 2, 3, 4], width=20, height=5)
        lines = chart.splitlines()
        assert len(lines) == 6  # 5 rows + footer (no title header)
        assert lines[-1].startswith("  +")

    def test_monotone_series_monotone_columns(self):
        chart = render_ascii_chart(
            list(range(50)), list(range(50)), width=25, height=6, title="t"
        )
        rows = [line[3:] for line in chart.splitlines()[1:-1]]
        # In each row the filled region is a suffix (rising line).
        for row in rows:
            stripped = row.rstrip()
            filled = stripped.lstrip(" ")
            assert " " not in filled

    def test_flat_series(self):
        chart = render_ascii_chart([1, 2, 3], [5, 5, 5], width=10, height=4)
        assert "█" in chart

    def test_too_few_points(self):
        assert render_ascii_chart([1], [1]) == "(chart unavailable)"

    def test_mismatched_lengths(self):
        assert render_ascii_chart([1, 2], [1]) == "(chart unavailable)"

    def test_title_and_range_in_header(self):
        chart = render_ascii_chart(
            [0, 1], [10, 90], width=8, height=3, title="growth"
        )
        assert "growth" in chart
        assert "10" in chart and "90" in chart


class TestReportChartIntegration:
    def test_series_rendered_as_chart(self):
        report = Report(
            experiment_id="x", title="T",
            series={"s": ([1.0, 2.0, 3.0], [1.0, 4.0, 9.0])},
        )
        text = report.render()
        assert "█" in text

    def test_charts_can_be_disabled(self):
        report = Report(
            experiment_id="x", title="T",
            series={"s": ([1.0, 2.0, 3.0], [1.0, 4.0, 9.0])},
        )
        assert "█" not in report.render(charts=False)
