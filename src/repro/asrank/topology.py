"""AS-level topology with business relationships.

Edges carry the standard two relationship kinds inferred from BGP data:
provider-to-customer (p2c) and peer-to-peer (p2p).  The topology is the
substrate for customer-cone computation, which in turn drives AS-Rank.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from ..errors import DataError
from ..types import ASN


class Relationship(enum.Enum):
    """AS business relationship on one edge."""

    P2C = "p2c"  # provider → customer
    P2P = "p2p"  # settlement-free peers


@dataclass(frozen=True)
class ASLink:
    """One inter-AS adjacency; for P2C, ``a`` is the provider."""

    a: ASN
    b: ASN
    relationship: Relationship

    def validate(self) -> "ASLink":
        if self.a == self.b:
            raise DataError(f"self-loop on AS{self.a}")
        return self


class ASTopology:
    """Adjacency-indexed AS graph with relationship-aware queries."""

    def __init__(self) -> None:
        self._asns: Set[ASN] = set()
        self._customers: Dict[ASN, Set[ASN]] = {}
        self._providers: Dict[ASN, Set[ASN]] = {}
        self._peers: Dict[ASN, Set[ASN]] = {}
        self._link_count = 0

    # -- construction --------------------------------------------------------

    def add_asn(self, asn: ASN) -> None:
        self._asns.add(asn)

    def add_p2c(self, provider: ASN, customer: ASN) -> None:
        """Add a provider→customer edge (idempotent)."""
        if provider == customer:
            raise DataError(f"self-loop on AS{provider}")
        self._asns.add(provider)
        self._asns.add(customer)
        customers = self._customers.setdefault(provider, set())
        if customer not in customers:
            customers.add(customer)
            self._providers.setdefault(customer, set()).add(provider)
            self._link_count += 1

    def add_p2p(self, a: ASN, b: ASN) -> None:
        """Add a symmetric peering edge (idempotent)."""
        if a == b:
            raise DataError(f"self-loop on AS{a}")
        self._asns.add(a)
        self._asns.add(b)
        peers_a = self._peers.setdefault(a, set())
        if b not in peers_a:
            peers_a.add(b)
            self._peers.setdefault(b, set()).add(a)
            self._link_count += 1

    def add_link(self, link: ASLink) -> None:
        link.validate()
        if link.relationship is Relationship.P2C:
            self.add_p2c(link.a, link.b)
        else:
            self.add_p2p(link.a, link.b)

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._asns)

    def __contains__(self, asn: int) -> bool:
        return asn in self._asns

    @property
    def link_count(self) -> int:
        return self._link_count

    def asns(self) -> List[ASN]:
        return sorted(self._asns)

    def customers_of(self, asn: ASN) -> Set[ASN]:
        return set(self._customers.get(asn, ()))

    def providers_of(self, asn: ASN) -> Set[ASN]:
        return set(self._providers.get(asn, ()))

    def peers_of(self, asn: ASN) -> Set[ASN]:
        return set(self._peers.get(asn, ()))

    def degree(self, asn: ASN) -> int:
        return (
            len(self._customers.get(asn, ()))
            + len(self._providers.get(asn, ()))
            + len(self._peers.get(asn, ()))
        )

    def is_stub(self, asn: ASN) -> bool:
        """A stub AS has no customers of its own."""
        return not self._customers.get(asn)

    def tier1s(self) -> List[ASN]:
        """ASes with customers but no providers (the clique analogue)."""
        return sorted(
            asn for asn in self._asns
            if self._customers.get(asn) and not self._providers.get(asn)
        )

    def p2c_links(self) -> Iterator[Tuple[ASN, ASN]]:
        for provider in sorted(self._customers):
            for customer in sorted(self._customers[provider]):
                yield provider, customer

    def validate_acyclic(self) -> None:
        """Raise :class:`DataError` if the p2c graph has a cycle.

        Provider loops are invalid economics (an AS cannot transitively
        buy transit from itself); generated topologies must be DAGs.
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[ASN, int] = {asn: WHITE for asn in self._asns}
        for root in self._asns:
            if color[root] != WHITE:
                continue
            stack: List[Tuple[ASN, Iterator[ASN]]] = [
                (root, iter(sorted(self._customers.get(root, ()))))
            ]
            color[root] = GRAY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if color[child] == GRAY:
                        raise DataError(
                            f"p2c cycle through AS{node} → AS{child}"
                        )
                    if color[child] == WHITE:
                        color[child] = GRAY
                        stack.append(
                            (child, iter(sorted(self._customers.get(child, ()))))
                        )
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
