"""APNIC-style per-AS user population estimates (offline stand-in).

The paper joins AS2Org mappings with APNIC's "How big is that network?"
per-AS eyeball estimates.  Offline, the universe generator assigns
heavy-tailed user counts per access ASN, per country; this package holds
the dataset container and its aggregation queries.
"""

from .population import ApnicDataset, PopulationRecord

__all__ = ["ApnicDataset", "PopulationRecord"]
