"""Tables 4–5: validating the two LLM stages against annotations.

The paper validated by manual inspection (320 notes/aka records, 449
favicon groups).  Offline, the universe's ground-truth annotations play
the human annotator: they record which numbers in each record truly are
sibling ASNs and which favicons truly are company logos.  The LLM (and
the decision tree around it) never sees these labels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.ner import NERModule, NERRecordResult
from ..core.web_inference import FaviconDecision, WebInferenceResult
from ..llm.classifier_engine import decode_brand
from ..metrics.confusion import ConfusionCounts
from ..peeringdb import PDBSnapshot
from ..types import ASN
from ..universe.generator import Annotations
from ..web.favicon import FaviconAPI


@dataclass
class ExtractionValidation:
    """Table 4's content plus per-record detail for error analysis."""

    counts: ConfusionCounts
    sample_size: int
    #: (asn, kind) for every mis-scored record: kind in {"fp", "fn"}.
    errors: List[Tuple[ASN, str]] = field(default_factory=list)


def score_extraction_record(
    result: NERRecordResult, truth: Sequence[ASN]
) -> str:
    """Classify one record's extraction outcome: tp/tn/fp/fn.

    Mirrors §5.3: a record is an FP when any extracted number is not a
    true sibling (misread decoy or upstream); an FN when a truly reported
    sibling was missed; TP when extraction matches; TN when there was
    nothing to extract and nothing was extracted.
    """
    extracted: Set[ASN] = set(result.siblings)
    true_set: Set[ASN] = set(truth)
    if extracted - true_set:
        return "fp"
    if true_set - extracted:
        return "fn"
    if true_set:
        return "tp"
    return "tn"


def validate_extraction(
    ner: NERModule,
    pdb: PDBSnapshot,
    annotations: Annotations,
    sample_size: int = 320,
    seed: int = 99,
) -> ExtractionValidation:
    """Run the extraction stage over an annotated sample (Table 4).

    The sample is drawn from records whose notes/aka contain digits —
    the same population the paper manually inspected.
    """
    numeric_nets = [
        net for net in pdb.networks()
        if net.freeform_text and any(ch.isdigit() for ch in net.freeform_text)
    ]
    rng = random.Random(("validation", seed).__repr__())
    if sample_size and len(numeric_nets) > sample_size:
        numeric_nets = rng.sample(numeric_nets, sample_size)
    counts = ConfusionCounts()
    errors: List[Tuple[ASN, str]] = []
    for net in numeric_nets:
        result = ner.extract_record(net)
        truth = annotations.notes_truth.get(net.asn, ())
        outcome = score_extraction_record(result, truth)
        setattr(counts, outcome, getattr(counts, outcome) + 1)
        if outcome in ("fp", "fn"):
            errors.append((net.asn, outcome))
    return ExtractionValidation(
        counts=counts, sample_size=len(numeric_nets), errors=errors
    )


@dataclass
class ClassifierValidation:
    """Table 5's content: per-step and overall confusion counts."""

    step1: ConfusionCounts
    step2: ConfusionCounts
    overall: ConfusionCounts
    groups_reviewed: int


def _group_truth(
    decision_urls: Sequence[str],
    favicon_api: FaviconAPI,
    annotations: Annotations,
) -> Optional[bool]:
    """Ground truth for one favicon group: is this a real company's logo?"""
    for url in decision_urls:
        record = favicon_api.fetch(url)
        if record is None:
            continue
        brand = decode_brand(record.content)
        if brand in annotations.favicon_company:
            return annotations.favicon_company[brand]
    return None


def validate_classifier(
    web_result: WebInferenceResult,
    favicon_api: FaviconAPI,
    annotations: Annotations,
) -> ClassifierValidation:
    """Score the favicon decision tree per step and overall (Table 5).

    Step 1 is the strict same-favicon + same-brand-token rule; its false
    negatives are the groups handed to step 2 (the LLM), as in the paper.
    """
    step1 = ConfusionCounts()
    step2 = ConfusionCounts()
    overall = ConfusionCounts()
    # Collate decisions per favicon digest.
    by_favicon: Dict[str, List[FaviconDecision]] = {}
    for decision in web_result.decisions:
        by_favicon.setdefault(decision.favicon, []).append(decision)

    reviewed = 0
    for digest in sorted(by_favicon):
        decisions = by_favicon[digest]
        urls: List[str] = []
        for decision in decisions:
            urls.extend(decision.urls)
        truth = _group_truth(urls, favicon_api, annotations)
        if truth is None:
            continue
        reviewed += 1
        step1_grouped = any(d.step == "same_subdomain" for d in decisions)
        llm_decisions = [
            d for d in decisions if d.step in ("llm_company", "llm_rejected")
        ]
        llm_grouped = any(d.step == "llm_company" for d in decisions)

        # Step 1 scoring.
        if step1_grouped and truth:
            step1.tp += 1
        elif step1_grouped and not truth:
            step1.fp += 1
        elif not step1_grouped and truth:
            step1.fn += 1
        else:
            step1.tn += 1

        # Step 2 scores only the groups step 1 left behind.
        if not step1_grouped and llm_decisions:
            if llm_grouped and truth:
                step2.tp += 1
            elif llm_grouped and not truth:
                step2.fp += 1
            elif not llm_grouped and truth:
                step2.fn += 1
            else:
                step2.tn += 1

        # Overall: grouped by either step.
        grouped = step1_grouped or llm_grouped
        if grouped and truth:
            overall.tp += 1
        elif grouped and not truth:
            overall.fp += 1
        elif not grouped and truth:
            overall.fn += 1
        else:
            overall.tn += 1

    return ClassifierValidation(
        step1=step1, step2=step2, overall=overall, groups_reviewed=reviewed
    )
