"""Experiment harness: regenerate every table and figure of the paper.

:class:`~repro.experiments.runner.ExperimentContext` builds (and caches)
one universe plus the three mappings; the registry maps experiment ids
(``table3`` ... ``table9``, ``fig7`` ... ``fig9``) to functions producing
:class:`~repro.experiments.report.Report` objects the CLI and benchmarks
render.
"""

from .report import Report, render_table
from .runner import (
    EXPERIMENTS,
    ExperimentContext,
    get_context,
    run_experiment,
)

__all__ = [
    "Report",
    "render_table",
    "EXPERIMENTS",
    "ExperimentContext",
    "get_context",
    "run_experiment",
]
