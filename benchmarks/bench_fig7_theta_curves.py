"""Figure 7 — the Organization Factor's cumulative-curve construction.

Paper: two curves over the same network set — the all-singletons
diagonal and AS2Org's descending-size cumulative curve; θ is the
normalized area between them.  The shape: the AS2Org curve dominates the
diagonal, saturates early (large orgs first), and both end at n.
"""

from conftest import run_and_render

from repro.metrics import org_factor_from_mapping


def test_fig7_theta_curves(benchmark, ctx):
    report = run_and_render(benchmark, ctx, "fig7")

    xs_s, ys_s = report.series["singletons"]
    xs_a, ys_a = report.series["as2org"]
    assert xs_s == xs_a
    n = len(ctx.universe.whois)
    assert len(xs_s) == n

    # Diagonal reference: y == x.
    assert ys_s == xs_s
    # AS2Org curve dominates the diagonal and ends at the same total.
    assert all(a >= s for a, s in zip(ys_a, ys_s))
    assert ys_a[-1] == ys_s[-1] == n

    # The curve saturates early: by 40% of the x-axis it holds > 55% of
    # networks (descending-size ordering front-loads the mass).
    cut = int(0.4 * n)
    assert ys_a[cut] / n > 0.55

    # Area under (curve - diagonal), normalized, equals θ.
    area = sum(a - s for a, s in zip(ys_a, ys_s))
    theta = area / (n * (n - 1) / 2)
    assert abs(theta - org_factor_from_mapping(ctx.as2org)) < 1e-9
