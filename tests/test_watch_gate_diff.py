"""Publish-gate and generation-diff semantics.

The diff's unit of change is the organization: merges, splits, moved
ASNs (sibling-set changes) and universe drift.  The gate turns those
deltas plus coverage/precision into a publish/refuse verdict; every
threshold gets one isolated block test here, plus the bootstrap rule
(first generation always passes — nothing to regress from).
"""

from __future__ import annotations

import pytest

from repro.core.mapping import OrgMapping
from repro.errors import ConfigError
from repro.serve.index import MappingIndex
from repro.watch import GateThresholds, PublishGate, diff_indexes


def index_of(groups):
    universe = sorted(asn for group in groups for asn in group)
    mapping = OrgMapping(
        universe=universe,
        clusters=[frozenset(group) for group in groups],
        method="gate-test",
    )
    return MappingIndex.build(mapping)


#: Thresholds loose enough that only the dimension under test can block.
LOOSE = dict(
    max_org_shrink=100.0,
    max_org_growth=100.0,
    max_coverage_drop=100.0,
    max_churn=100.0,
)


class TestDiffIndexes:
    def test_identical_generations_diff_to_zero(self):
        old = index_of([{1, 2}, {3, 4}])
        diff = diff_indexes(old, index_of([{1, 2}, {3, 4}]))
        assert diff.asns_moved == 0
        assert diff.orgs_merged == 0
        assert diff.orgs_split == 0
        assert diff.asns_added == 0 and diff.asns_removed == 0
        assert diff.churn_fraction == 0.0

    def test_merge_counts_once_and_moves_all_members(self):
        diff = diff_indexes(index_of([{1, 2}, {3, 4}]), index_of([{1, 2, 3, 4}]))
        assert diff.orgs_merged == 1
        assert diff.orgs_split == 0
        assert diff.asns_moved == 4  # every sibling set changed
        assert diff.churn_fraction == 1.0
        assert len(diff.merged_examples) == 1

    def test_split_is_the_mirror_of_merge(self):
        diff = diff_indexes(index_of([{1, 2, 3, 4}]), index_of([{1, 2}, {3, 4}]))
        assert diff.orgs_split == 1
        assert diff.orgs_merged == 0
        assert diff.asns_moved == 4
        assert len(diff.split_examples) == 1

    def test_universe_drift_is_not_churn(self):
        # ASN 5 appears, ASN 3 disappears; the surviving orgs are intact.
        diff = diff_indexes(index_of([{1, 2}, {3}]), index_of([{1, 2}, {5}]))
        assert diff.asns_added == 1
        assert diff.asns_removed == 1
        assert diff.asns_moved == 0
        assert diff.orgs_merged == 0 and diff.orgs_split == 0
        assert diff.common_asns == 2

    def test_disjoint_universes_have_zero_churn_fraction(self):
        diff = diff_indexes(index_of([{1, 2}]), index_of([{8, 9}]))
        assert diff.common_asns == 0
        assert diff.churn_fraction == 0.0

    def test_json_form_is_complete_and_bounded(self):
        diff = diff_indexes(index_of([{1, 2}, {3, 4}]), index_of([{1, 2, 3, 4}]))
        payload = diff.to_json()
        for key in (
            "from_orgs", "to_orgs", "common_asns", "asns_added",
            "asns_removed", "asns_moved", "orgs_merged", "orgs_split",
            "churn_fraction", "merged_examples", "split_examples",
        ):
            assert key in payload


class TestThresholds:
    def test_negative_limits_are_rejected(self):
        with pytest.raises(ConfigError):
            GateThresholds(max_org_shrink=-0.1).validate()
        with pytest.raises(ConfigError):
            GateThresholds(max_churn=-1.0).validate()

    def test_precision_floor_must_be_a_probability(self):
        with pytest.raises(ConfigError):
            GateThresholds(min_precision=1.5).validate()
        with pytest.raises(ConfigError):
            GateThresholds(min_precision=-0.5).validate()

    def test_json_round_trip_of_the_knobs(self):
        thresholds = GateThresholds(max_churn=0.1, min_precision=0.8)
        payload = thresholds.to_json()
        assert payload["max_churn"] == 0.1
        assert payload["min_precision"] == 0.8


class TestPublishGate:
    def test_bootstrap_generation_always_passes(self):
        gate = PublishGate(GateThresholds())
        decision = gate.evaluate(index_of([{1, 2}, {3}]), active=None)
        assert decision.allowed
        assert decision.diff is None
        assert decision.metrics["candidate_orgs"] == 2.0

    def test_bootstrap_still_enforces_the_precision_floor(self):
        gate = PublishGate(GateThresholds(min_precision=0.9, **LOOSE))
        decision = gate.evaluate(
            index_of([{1, 2}]), active=None, precision=0.5
        )
        assert not decision.allowed
        assert any("precision" in r for r in decision.reasons)

    def test_org_shrink_blocks(self):
        gate = PublishGate(GateThresholds(**{**LOOSE, "max_org_shrink": 0.2}))
        active = index_of([{n} for n in range(1, 11)])
        candidate = index_of([{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}])
        decision = gate.evaluate(candidate, active)
        assert not decision.allowed
        assert any("shrank" in r for r in decision.reasons)

    def test_org_growth_blocks(self):
        gate = PublishGate(GateThresholds(**{**LOOSE, "max_org_growth": 0.5}))
        active = index_of([{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}])
        candidate = index_of([{n} for n in range(1, 11)])
        decision = gate.evaluate(candidate, active)
        assert not decision.allowed
        assert any("grew" in r for r in decision.reasons)

    def test_coverage_drop_blocks(self):
        gate = PublishGate(
            GateThresholds(**{**LOOSE, "max_coverage_drop": 0.05})
        )
        active = index_of([{n} for n in range(1, 21)])
        candidate = index_of([{n} for n in range(1, 11)])
        decision = gate.evaluate(candidate, active)
        assert not decision.allowed
        assert any("coverage" in r for r in decision.reasons)

    def test_churn_blocks(self):
        gate = PublishGate(GateThresholds(**{**LOOSE, "max_churn": 0.1}))
        active = index_of([{1, 2}, {3, 4}])
        candidate = index_of([{1, 3}, {2, 4}])  # same universe, reshuffled
        decision = gate.evaluate(candidate, active)
        assert not decision.allowed
        assert any("churn" in r for r in decision.reasons)
        assert decision.metrics["churn_fraction"] == 1.0

    def test_small_drift_passes_with_evidence_attached(self):
        gate = PublishGate(GateThresholds())
        active = index_of([{n} for n in range(1, 11)])
        candidate = index_of([{1, 2}] + [{n} for n in range(3, 12)])
        decision = gate.evaluate(candidate, active, precision=1.0)
        assert decision.allowed
        assert decision.reasons == ()
        assert decision.diff is not None
        assert decision.metrics["precision"] == 1.0
        payload = decision.to_json()
        assert payload["allowed"] is True
        assert "diff" in payload
