"""Favicon + URL-list company classification (the Listing-3 task).

The simulated model's "visual" competence: given favicon bytes and the
final URLs serving them, decide whether they identify one
telecommunications company (group the ASNs) or a web technology / unknown
(don't).  Offline, favicon bytes are ``ICO:<brand>`` blobs (see
:func:`repro.web.simweb.make_favicon`), so recognizing the logo reduces
to decoding the brand token — the legitimate stand-in for GPT-4o-mini
recognizing a Claro or Bootstrap logo.

Brand recognition is cross-checked against the URL list the same way the
prompt implies: a known framework-default icon is a technology regardless
of domains; a brand icon whose domains look wildly unrelated lowers
confidence (that is where the DE-CIX/AQABA-IX false negatives of §5.3
come from).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..web.simweb import is_framework_favicon_brand
from ..web.url import brand_label

#: Pretty names for the framework-default favicon families.
_FRAMEWORK_NAMES = {
    "bootstrap-default": "Bootstrap",
    "wordpress-default": "WordPress",
    "godaddy-default": "GoDaddy",
    "ixcsoft-default": "IXC Soft",
    "wix-default": "Wix",
}


@dataclass(frozen=True)
class ClassificationAnswer:
    """What the simulated model replies for one (favicon, URLs) tuple."""

    reply: str
    is_company: bool


def decode_brand(favicon: bytes) -> str:
    """Recover the brand token encoded in simulated favicon bytes."""
    if favicon.startswith(b"ICO:"):
        return favicon[len(b"ICO:"):].decode("utf-8", errors="replace")
    return ""


def _pretty_company(brand: str) -> str:
    return " ".join(part.capitalize() for part in brand.replace("_", "-").split("-"))


def _domain_affinity(brand: str, urls: Sequence[str]) -> float:
    """Fraction of URLs whose brand token resembles the icon's brand.

    "Resembles" means one token contains the other ("claro" vs
    "clarochile"), the relation the paper's examples rely on.
    """
    if not urls:
        return 0.0
    brand_token = brand.lower().replace("-", "")
    matches = 0
    for url in urls:
        try:
            label = brand_label(url).lower().replace("-", "")
        except Exception:
            continue
        if brand_token and (brand_token in label or label in brand_token):
            matches += 1
    return matches / len(urls)


def classify_group(
    favicon: bytes, final_urls: Sequence[str]
) -> ClassificationAnswer:
    """Decide company vs technology vs unknown for one favicon group."""
    brand = decode_brand(favicon)
    if not brand:
        return ClassificationAnswer(reply="I don't know", is_company=False)
    if is_framework_favicon_brand(brand):
        name = _FRAMEWORK_NAMES.get(
            brand, _pretty_company(brand.replace("-default", " template"))
        )
        return ClassificationAnswer(reply=name, is_company=False)
    affinity = _domain_affinity(brand, final_urls)
    if affinity == 0.0 and len(final_urls) > 1:
        # Icon says one thing, every domain says another: the model
        # cannot tie them to a single company (the DE-CIX failure mode).
        return ClassificationAnswer(reply="I don't know", is_company=False)
    return ClassificationAnswer(reply=_pretty_company(brand), is_company=True)
