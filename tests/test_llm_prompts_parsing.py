"""Unit tests for prompt rendering and structured-output parsing."""

import pytest

from repro.errors import LLMResponseError, PromptError
from repro.llm.parsing import (
    parse_classifier_reply,
    parse_extraction_reply,
    render_extraction_reply,
)
from repro.llm.prompts import (
    CLASSIFIER_PROMPT_MARKER,
    EXTRACTION_PROMPT_MARKER,
    render_classifier_messages,
    render_extraction_prompt,
)


class TestExtractionPrompt:
    def test_contains_paper_framing(self):
        prompt = render_extraction_prompt(3320, "some notes", "some aka")
        assert EXTRACTION_PROMPT_MARKER in prompt
        assert "as-in" in prompt and "as-out" in prompt
        assert "explicitly written" in prompt

    def test_embeds_fields(self):
        prompt = render_extraction_prompt(3320, "NOTES-HERE", "AKA-HERE")
        assert "ASN 3320" in prompt
        assert "Notes: NOTES-HERE" in prompt
        assert "AKA: AKA-HERE" in prompt

    def test_empty_fields_get_placeholder(self):
        prompt = render_extraction_prompt(1, "", "")
        assert "Notes: (empty)" in prompt

    def test_bad_asn_rejected(self):
        with pytest.raises(PromptError):
            render_extraction_prompt(0, "x", "y")

    def test_format_instructions_included(self):
        assert "sibling_asns" in render_extraction_prompt(1, "x", "y")


class TestClassifierPrompt:
    def test_message_structure(self):
        messages = render_classifier_messages(
            ["https://a.example.com/"], b"ICO:claro"
        )
        assert len(messages) == 1
        assert CLASSIFIER_PROMPT_MARKER in messages[0].text
        assert messages[0].images[0].data == b"ICO:claro"

    def test_urls_embedded(self):
        messages = render_classifier_messages(
            ["https://a.example.com/", "https://b.example.com/"], b"ICO:x"
        )
        assert "a.example.com" in messages[0].text

    def test_requires_urls(self):
        with pytest.raises(PromptError):
            render_classifier_messages([], b"ICO:x")

    def test_requires_favicon(self):
        with pytest.raises(PromptError):
            render_classifier_messages(["https://a.example.com/"], b"")


class TestExtractionReplyParsing:
    def test_round_trip(self):
        reply = render_extraction_reply([3356, 209], "they are siblings")
        parsed = parse_extraction_reply(reply)
        assert parsed.sibling_asns == (209, 3356)
        assert parsed.reasoning == "they are siblings"
        assert parsed.found

    def test_empty_list(self):
        parsed = parse_extraction_reply('{"sibling_asns": [], "reasoning": ""}')
        assert parsed.sibling_asns == ()
        assert not parsed.found

    def test_fenced_json(self):
        raw = '```json\n{"sibling_asns": [7], "reasoning": "x"}\n```'
        assert parse_extraction_reply(raw).sibling_asns == (7,)

    def test_json_embedded_in_prose(self):
        raw = 'Sure! {"sibling_asns": [7], "reasoning": "x"} Hope that helps.'
        assert parse_extraction_reply(raw).sibling_asns == (7,)

    def test_dedupes_and_sorts(self):
        raw = '{"sibling_asns": [9, 3, 9], "reasoning": ""}'
        assert parse_extraction_reply(raw).sibling_asns == (3, 9)

    def test_string_numbers_coerced(self):
        raw = '{"sibling_asns": ["42"], "reasoning": ""}'
        assert parse_extraction_reply(raw).sibling_asns == (42,)

    def test_garbage_raises(self):
        with pytest.raises(LLMResponseError):
            parse_extraction_reply("no json here at all")

    def test_non_list_field_raises(self):
        with pytest.raises(LLMResponseError):
            parse_extraction_reply('{"sibling_asns": "oops"}')

    def test_non_numeric_entry_raises(self):
        with pytest.raises(LLMResponseError):
            parse_extraction_reply('{"sibling_asns": ["xyz"]}')


class TestClassifierReplyParsing:
    def test_company_name(self):
        verdict = parse_classifier_reply("Claro")
        assert verdict.is_company
        assert verdict.answer == "Claro"

    def test_parent_company_name(self):
        assert parse_classifier_reply("Deutsche Telekom").is_company

    def test_framework_names_rejected(self):
        for reply in ("Bootstrap", "WordPress", "GoDaddy", "IXC Soft"):
            assert not parse_classifier_reply(reply).is_company

    def test_i_dont_know(self):
        verdict = parse_classifier_reply("I don't know")
        assert not verdict.is_company
        assert verdict.is_unknown

    def test_trailing_period_stripped(self):
        assert parse_classifier_reply("Orange.").answer == "Orange"

    def test_empty_reply_raises(self):
        with pytest.raises(LLMResponseError):
            parse_classifier_reply("   ")
