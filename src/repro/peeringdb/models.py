"""PeeringDB data objects.

Follows the live PeeringDB schema naming where it matters to Borges:
``org`` objects carry ``id`` and ``name``; ``net`` objects carry ``asn``,
``name``, ``aka``, ``notes``, ``website`` and the foreign key ``org_id``.
Only the fields the paper's pipeline reads are modelled; extra fields in
loaded JSON are preserved round-trip via ``extra``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from ..errors import SchemaError
from ..types import ASN, PdbOrgID, is_valid_asn


@dataclass
class Organization:
    """A PeeringDB ``org`` object (an operator-defined organization)."""

    org_id: PdbOrgID
    name: str
    website: str = ""
    country: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> "Organization":
        if not isinstance(self.org_id, int) or self.org_id <= 0:
            raise SchemaError(f"org_id must be a positive int: {self.org_id!r}")
        if not self.name:
            raise SchemaError(f"org {self.org_id}: empty name")
        return self

    def to_json(self) -> Dict[str, Any]:
        record = {
            "id": self.org_id,
            "name": self.name,
            "website": self.website,
            "country": self.country,
        }
        record.update(self.extra)
        return record

    @classmethod
    def from_json(cls, record: Dict[str, Any]) -> "Organization":
        try:
            org_id = int(record["id"])
            name = str(record["name"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"bad org record: {record!r}") from exc
        known = {"id", "name", "website", "country"}
        return cls(
            org_id=org_id,
            name=name,
            website=str(record.get("website", "") or ""),
            country=str(record.get("country", "") or ""),
            extra={k: v for k, v in record.items() if k not in known},
        ).validate()


@dataclass
class Network:
    """A PeeringDB ``net`` object (one AS as registered by its operator)."""

    asn: ASN
    name: str
    org_id: PdbOrgID
    aka: str = ""
    notes: str = ""
    website: str = ""
    info_type: str = ""  # e.g. "NSP", "Cable/DSL/ISP", "Content"
    extra: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> "Network":
        if not is_valid_asn(self.asn):
            raise SchemaError(f"net {self.name!r}: invalid ASN {self.asn!r}")
        if not isinstance(self.org_id, int) or self.org_id <= 0:
            raise SchemaError(f"net AS{self.asn}: bad org_id {self.org_id!r}")
        if not self.name:
            raise SchemaError(f"net AS{self.asn}: empty name")
        return self

    @property
    def has_website(self) -> bool:
        return bool(self.website.strip())

    @property
    def freeform_text(self) -> str:
        """The concatenated free-text the NER stage inspects."""
        parts = [p for p in (self.aka, self.notes) if p]
        return "\n".join(parts)

    def text_field(self, which: str) -> str:
        """Return the named free-text field (``"notes"`` or ``"aka"``)."""
        if which == "notes":
            return self.notes
        if which == "aka":
            return self.aka
        raise ValueError(f"unknown text field {which!r}")

    def to_json(self) -> Dict[str, Any]:
        record = {
            "asn": self.asn,
            "name": self.name,
            "org_id": self.org_id,
            "aka": self.aka,
            "notes": self.notes,
            "website": self.website,
            "info_type": self.info_type,
        }
        record.update(self.extra)
        return record

    @classmethod
    def from_json(cls, record: Dict[str, Any]) -> "Network":
        try:
            asn = int(record["asn"])
            name = str(record["name"])
            org_id = int(record["org_id"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"bad net record: {record!r}") from exc
        known = {"asn", "name", "org_id", "aka", "notes", "website", "info_type"}
        return cls(
            asn=asn,
            name=name,
            org_id=org_id,
            aka=str(record.get("aka", "") or ""),
            notes=str(record.get("notes", "") or ""),
            website=str(record.get("website", "") or ""),
            info_type=str(record.get("info_type", "") or ""),
            extra={k: v for k, v in record.items() if k not in known},
        ).validate()
