"""WHOIS substrate: RIR delegations and the CAIDA ``as2org`` file format.

WHOIS is the compulsory database: every allocated ASN has exactly one
WHOIS organization (``OID_W``).  CAIDA's AS2Org dataset is derived from
these records; :mod:`repro.whois.as2org_file` reads/writes its JSON-lines
format so the baseline is exercised through the same file format CAIDA
publishes.
"""

from .models import ASNDelegation, WhoisOrg
from .dataset import WhoisDataset
from .as2org_file import load_as2org_file, save_as2org_file

__all__ = [
    "ASNDelegation",
    "WhoisOrg",
    "WhoisDataset",
    "load_as2org_file",
    "save_as2org_file",
]
