"""URL parsing, normalization and brand-label extraction.

PeeringDB ``website`` fields are messy: missing schemes, mixed case,
trailing slashes, query junk.  This module canonicalizes them and
implements the "same subdomain" notion of §4.3.3 — the paper highlights
the brand token, e.g. ``www.orange.es`` and ``www.orange.pl`` share
**orange** — via :func:`brand_label`, which strips a public-suffix-aware
TLD and any ``www``-like prefix labels.

The public-suffix handling uses a built-in mini-list covering the
country-code second-level domains the synthetic universe (and the paper's
examples) use; a full PSL is unnecessary offline.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import URLError

#: Multi-label public suffixes recognized in addition to single-label TLDs.
#: Sorted longest-first at match time so ``riau.go.id`` beats ``go.id``.
_MULTI_SUFFIXES = frozenset(
    {
        "co.uk", "org.uk", "ac.uk", "gov.uk",
        "com.br", "net.br", "org.br", "gov.br",
        "com.ar", "net.ar", "com.mx", "com.co", "com.pe", "com.do",
        "com.py", "com.uy", "com.bo", "com.ec", "com.gt", "com.sv",
        "com.ni", "com.hn", "com.pa", "com.ve", "com.cl",
        "co.id", "go.id", "ac.id", "riau.go.id",
        "co.jp", "ne.jp", "or.jp", "ad.jp",
        "co.kr", "or.kr", "com.tw", "net.tw",
        "com.au", "net.au", "org.au",
        "co.nz", "net.nz", "co.za", "co.in", "net.in", "org.in",
        "com.sg", "com.my", "com.ph", "com.vn", "com.hk", "com.cn",
        "com.tr", "com.ru", "com.ua", "com.pl", "com.de",
        "co.il", "com.sa", "com.eg", "com.ng", "co.ke", "co.tz",
        "com.bd", "com.pk", "com.np", "com.lk",
        "ht.hr",
    }
)

_SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*://")
_HOST_RE = re.compile(r"^[a-z0-9]([a-z0-9-]*[a-z0-9])?$")

#: Hostname labels that carry no brand information when leading.
_GENERIC_PREFIXES = frozenset({"www", "web", "portal", "home", "m", "en", "es"})


@dataclass(frozen=True)
class ParsedURL:
    """A canonicalized URL split into its Borges-relevant parts."""

    scheme: str
    host: str
    path: str

    @property
    def url(self) -> str:
        return f"{self.scheme}://{self.host}{self.path}"

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(self.host.split("."))

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.url


def parse_url(raw: str) -> ParsedURL:
    """Parse and canonicalize *raw* into a :class:`ParsedURL`.

    Raises :class:`~repro.errors.URLError` on hosts that cannot be a DNS
    name.  A missing scheme defaults to ``http``.
    """
    if not raw or not raw.strip():
        raise URLError(raw, "empty")
    text = raw.strip()
    if not _SCHEME_RE.match(text):
        text = "http://" + text
    scheme, _, rest = text.partition("://")
    scheme = scheme.lower()
    if scheme not in ("http", "https"):
        raise URLError(raw, f"unsupported scheme {scheme!r}")
    host, slash, path = rest.partition("/")
    host = host.split("@")[-1].split(":")[0].strip().lower().rstrip(".")
    if not host or "." not in host:
        raise URLError(raw, "host is not a dotted DNS name")
    for label in host.split("."):
        if not _HOST_RE.match(label):
            raise URLError(raw, f"bad hostname label {label!r}")
    path = ("/" + path) if slash else "/"
    # Strip query/fragment; normalize trailing slash on the root only.
    path = path.split("?")[0].split("#")[0]
    if not path:
        path = "/"
    return ParsedURL(scheme=scheme, host=host, path=path)


def normalize_url(raw: str) -> str:
    """Canonical string form of *raw* (scheme-lowered, no query/fragment)."""
    return parse_url(raw).url


def public_suffix(host: str) -> str:
    """Return the public suffix of *host* using the built-in mini-list."""
    labels = host.lower().split(".")
    for take in (3, 2):
        if len(labels) > take:
            candidate = ".".join(labels[-take:])
            if candidate in _MULTI_SUFFIXES:
                return candidate
    return labels[-1]


def registrable_domain(host_or_url: str) -> str:
    """The registrable domain (eTLD+1), e.g. ``claro.com.pe``.

    Accepts either a bare host or a full URL.
    """
    host = host_or_url
    if "://" in host_or_url or "/" in host_or_url:
        host = parse_url(host_or_url).host
    host = host.lower().rstrip(".")
    suffix = public_suffix(host)
    suffix_labels = suffix.split(".")
    labels = host.split(".")
    if len(labels) <= len(suffix_labels):
        return host
    return ".".join(labels[-(len(suffix_labels) + 1):])


def brand_label(host_or_url: str) -> str:
    """The brand token of a host: ``www.orange.es`` → ``orange``.

    This is the "subdomain" the paper compares in the favicon decision
    tree: the leftmost label of the registrable domain.
    """
    domain = registrable_domain(host_or_url)
    return domain.split(".")[0]


def same_brand(url_a: str, url_b: str) -> bool:
    """True when both URLs share the brand token (§4.3.3 step 1)."""
    try:
        return brand_label(url_a) == brand_label(url_b)
    except URLError:
        return False


def host_of(url: str) -> Optional[str]:
    """Best-effort host extraction; ``None`` when unparsable."""
    try:
        return parse_url(url).host
    except URLError:
        return None
