"""Customer-cone computation.

The customer cone of AS X is X plus every AS reachable from X by
following only provider→customer edges — CAIDA's standard definition.
Cones are computed for all ASes in one pass over a reverse topological
order of the (acyclic) p2c graph, memoizing child cones.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..types import ASN
from .topology import ASTopology


def customer_cone(topology: ASTopology, asn: ASN) -> Set[ASN]:
    """The customer cone of one AS (includes the AS itself)."""
    cone: Set[ASN] = set()
    stack: List[ASN] = [asn]
    while stack:
        node = stack.pop()
        if node in cone:
            continue
        cone.add(node)
        stack.extend(topology.customers_of(node) - cone)
    return cone


def customer_cones(topology: ASTopology) -> Dict[ASN, Set[ASN]]:
    """Customer cones for every AS, memoized bottom-up.

    Runs in O(V + E) traversal plus set-union cost; suitable for the
    generated topologies (tens of thousands of ASes).
    """
    cones: Dict[ASN, Set[ASN]] = {}

    def compute(root: ASN) -> Set[ASN]:
        # Iterative post-order to avoid recursion-depth limits on deep
        # provider chains.
        order: List[ASN] = []
        visited: Set[ASN] = set()
        stack: List[ASN] = [root]
        while stack:
            node = stack.pop()
            if node in visited or node in cones:
                continue
            visited.add(node)
            order.append(node)
            stack.extend(
                c for c in topology.customers_of(node)
                if c not in visited and c not in cones
            )
        for node in reversed(order):
            cone: Set[ASN] = {node}
            for child in topology.customers_of(node):
                cone |= cones.get(child) or compute(child)
            cones[node] = cone
        return cones[root]

    for asn in topology.asns():
        if asn not in cones:
            compute(asn)
    return cones


def cone_sizes(topology: ASTopology) -> Dict[ASN, int]:
    """Customer-cone sizes for every AS (the AS-Rank key)."""
    return {asn: len(cone) for asn, cone in customer_cones(topology).items()}
