#!/usr/bin/env python3
"""Tracking mergers & acquisitions through registry and web signals.

The paper motivates Borges with the Level3 → CenturyLink → Lumen history
(Fig. 1) and the Clearwire → Sprint → T-Mobile redirect chain (Fig. 5b).
This example walks those exact planted scenarios:

1. shows the WHOIS view (fragmented legal entities — what AS2Org sees),
2. shows the PeeringDB organization view (Fig. 3's consolidation),
3. follows the live redirect chains with the headless scraper,
4. runs Borges and prints the recovered organization for each ASN.

Run:  python examples/merger_tracking.py
"""

from repro import BorgesPipeline, generate_universe
from repro.config import UniverseConfig
from repro.universe.canonical import (
    AS_CENTURYLINK,
    AS_CLEARWIRE,
    AS_EDGECAST,
    AS_LIMELIGHT,
    AS_LUMEN,
    AS_TMOBILE_US,
)
from repro.web.scraper import HeadlessScraper

CASES = {
    "Lumen / CenturyLink (Fig. 3)": (AS_LUMEN, AS_CENTURYLINK),
    "Edgecast / Limelight (Fig. 5a)": (AS_EDGECAST, AS_LIMELIGHT),
    "Clearwire / T-Mobile (Fig. 5b)": (AS_CLEARWIRE, AS_TMOBILE_US),
}


def main() -> None:
    universe = generate_universe(UniverseConfig(n_organizations=1000))
    whois, pdb, web = universe.whois, universe.pdb, universe.web

    print("=== registry views ===")
    for label, (a, b) in CASES.items():
        whois_same = whois.org_id_of(a) == whois.org_id_of(b)
        pdb_same = (
            a in pdb and b in pdb
            and pdb.nets[a].org_id == pdb.nets[b].org_id
        )
        print(f"{label}:")
        print(f"  AS{a} WHOIS org: {whois.org_id_of(a)} ({whois.org_name_of(a)})")
        print(f"  AS{b} WHOIS org: {whois.org_id_of(b)} ({whois.org_name_of(b)})")
        print(f"  same WHOIS org? {whois_same}   same PeeringDB org? {pdb_same}")

    print("\n=== redirect chains (headless browser) ===")
    scraper = HeadlessScraper(web)
    for url in (
        "https://www.centurylink.com/",
        "https://www.edgecast.com/",
        "https://www.clearwire.com/",
    ):
        result = scraper.resolve(url)
        chain = "  ->  ".join(result.chain)
        print(f"  {chain}")

    print("\n=== Borges verdicts ===")
    mapping = BorgesPipeline(whois, pdb, web).run().mapping
    for label, (a, b) in CASES.items():
        siblings = mapping.are_siblings(a, b)
        cluster = sorted(mapping.cluster_of(a))
        print(f"{label}: siblings={siblings}")
        print(f"  organization of AS{a}: {cluster} ({mapping.org_name_of(a)})")


if __name__ == "__main__":
    main()
