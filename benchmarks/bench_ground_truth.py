"""Beyond-θ bench: partition quality against the synthetic ground truth.

Not a paper table — the paper explicitly cannot compute it ("no ground
truth exists for organizational mappings", §1; "θ does not distinguish
between correct and incorrect mappings", §5.4).  The synthetic universe
knows the truth, so this bench verifies the *premise* behind θ: Borges's
higher θ comes from CORRECT merges (recall rises while pairwise precision
stays near 1), not from lumping unrelated networks together.
"""

from repro.analysis.ground_truth import ground_truth_table
from repro.experiments.report import render_table


def test_ground_truth_partition_quality(benchmark, ctx):
    rows = benchmark.pedantic(
        lambda: ground_truth_table(ctx), rounds=1, iterations=1
    )
    print()
    print(render_table(rows))

    by_method = {row["method"]: row for row in rows}
    as2org, plus, borges = (
        by_method["AS2Org"], by_method["as2org+"], by_method["Borges"]
    )

    # Recall strictly improves along the method ladder...
    assert as2org["pair_recall"] < plus["pair_recall"] < borges["pair_recall"]
    # ...while precision never collapses (merges are overwhelmingly real).
    assert borges["pair_precision"] > 0.9
    assert plus["pair_precision"] > 0.95
    # Aggregate agreement (ARI, V-measure) improves too.
    assert borges["ari"] > as2org["ari"]
    assert borges["v_measure"] > as2org["v_measure"]
