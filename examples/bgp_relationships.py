#!/usr/bin/env python3
"""From BGP paths to AS relationships to organizations.

The full stack the paper's introduction sketches, end to end:

1. simulate RouteViews-style collectors over the synthetic AS topology
   (valley-free route propagation);
2. re-infer provider/customer/peer relationships from the observed
   paths with a Gao-style degree heuristic, and score them against the
   known ground-truth edges;
3. compute customer cones / AS-Rank from the topology;
4. lift the view from ASes to *organizations* with Borges, showing how
   the same top-ranked networks consolidate under their true owners.

Run:  python examples/bgp_relationships.py
"""

import random

from repro import BorgesPipeline, build_as2org_mapping, generate_universe
from repro.asrank.bgp import collect_paths, is_valley_free
from repro.asrank.relationship_inference import (
    infer_relationships,
    score_inference,
)
from repro.config import UniverseConfig


def main() -> None:
    universe = generate_universe(UniverseConfig(n_organizations=1500))
    topology = universe.topology
    rng = random.Random(7)

    print("=== 1. simulate collectors ===")
    collectors = topology.tier1s()[:3] + rng.sample(topology.asns(), 3)
    origins = rng.sample(topology.asns(), 150)
    announcements = collect_paths(topology, collectors=collectors, origins=origins)
    valley_free = sum(is_valley_free(topology, a.path) for a in announcements)
    lengths = [len(a.path) for a in announcements]
    print(f"  {len(announcements)} paths from {len(collectors)} collectors")
    print(f"  valley-free: {valley_free}/{len(announcements)}")
    print(f"  path lengths: min={min(lengths)} max={max(lengths)}")

    print("\n=== 2. infer relationships from the paths ===")
    edges = infer_relationships(announcements)
    score = score_inference(topology, edges)
    print(
        f"  {score.total} edges inferred, accuracy={score.accuracy:.3f} "
        f"(kind confusion={score.wrong_kind}, flipped="
        f"{score.wrong_orientation}, invented={score.nonexistent})"
    )

    print("\n=== 3. AS-Rank from customer cones ===")
    rank = universe.asrank
    for entry in rank.top(5):
        org = universe.ground_truth.org_of_asn(entry.asn)
        print(
            f"  rank {entry.rank}: AS{entry.asn} cone={entry.cone_size} "
            f"({org.name})"
        )

    print("\n=== 4. lift to organizations with Borges ===")
    borges = BorgesPipeline(
        universe.whois, universe.pdb, universe.web
    ).run().mapping
    as2org = build_as2org_mapping(universe.whois)
    for entry in rank.top(5):
        before = len(as2org.cluster_of(entry.asn))
        after = len(borges.cluster_of(entry.asn))
        marker = f" (+{after - before})" if after > before else ""
        print(
            f"  rank {entry.rank}: AS2Org sees {before} networks, "
            f"Borges sees {after}{marker}"
        )


if __name__ == "__main__":
    main()
