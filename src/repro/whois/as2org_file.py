"""Reader/writer for CAIDA's AS2Org JSON-lines file format.

CAIDA publishes AS2Org as a text file of JSON records, one per line, of
two types distinguished by a ``type`` field::

    {"type": "Organization", "organizationId": "...", "name": "...", ...}
    {"type": "ASN", "asn": "3356", "organizationId": "...", ...}

We reproduce that layout (including string-typed ASNs) so the pipeline
reads the same wire format the real system would.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import List, Union

from ..errors import SchemaError, SnapshotError
from .dataset import WhoisDataset
from .models import ASNDelegation, WhoisOrg


def save_as2org_file(dataset: WhoisDataset, path: Union[str, Path]) -> None:
    """Write *dataset* in CAIDA's JSON-lines format (gzip if ``.gz``)."""
    path = Path(path)
    lines: List[str] = []
    for org_id in sorted(dataset.orgs):
        lines.append(json.dumps(dataset.orgs[org_id].to_json(), ensure_ascii=False))
    for asn in sorted(dataset.delegations):
        lines.append(
            json.dumps(dataset.delegations[asn].to_json(), ensure_ascii=False)
        )
    payload = "\n".join(lines) + "\n"
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(payload)
    else:
        path.write_text(payload, encoding="utf-8")


def load_as2org_file(path: Union[str, Path]) -> WhoisDataset:
    """Load a CAIDA-format AS2Org file into a :class:`WhoisDataset`."""
    path = Path(path)
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                text = fh.read()
        else:
            text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SnapshotError(f"cannot read as2org file {path}: {exc}") from exc

    orgs: List[WhoisOrg] = []
    delegations: List[ASNDelegation] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"{path}:{lineno}: bad JSON: {exc}") from exc
        kind = record.get("type")
        if kind == "Organization":
            orgs.append(WhoisOrg.from_json(record))
        elif kind == "ASN":
            delegations.append(ASNDelegation.from_json(record))
        else:
            raise SchemaError(f"{path}:{lineno}: unknown record type {kind!r}")
    return WhoisDataset.build(orgs, delegations)
