#!/usr/bin/env python3
"""The serve layer end to end: publish, serve, query, hot-swap, load.

Runs the pipeline on a small universe, publishes the mapping as a
CAIDA-format release file, boots the HTTP query API on an ephemeral
port, exercises every endpoint with plain ``urllib``, hot-swaps to the
release-file generation while requests are flowing, and finishes with a
seeded Zipfian load run against the in-process service.

Run:  python examples/query_service.py [--orgs N] [--seed S]
"""

import argparse
import json
import tempfile
import urllib.request
from pathlib import Path

from repro import BorgesPipeline, UniverseConfig, generate_universe
from repro.core.release import save_mapping_as2org
from repro.serve import LoadGenerator, QueryServer, QueryService


def get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--orgs", type=int, default=500)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print(f"running the pipeline (seed={args.seed}, orgs={args.orgs})...")
    universe = generate_universe(
        UniverseConfig(seed=args.seed, n_organizations=args.orgs)
    )
    result = BorgesPipeline(
        universe.whois, universe.pdb, universe.web
    ).run()
    mapping = result.mapping

    service = QueryService()
    service.store.load_from_mapping(
        mapping, whois=universe.whois, pdb=universe.pdb
    )
    index = service.store.current().index
    big = max((index.org_of(a) for a in index.asns()), key=lambda o: o.size)
    member = big.members[0]

    with QueryServer(service) as server:
        print(f"\nquery API on {server.url}")

        body = get(f"{server.url}/v1/asn/{member}")
        print(f"GET /v1/asn/{member}")
        print(f"  -> {body['name'] or 'AS' + str(member)} belongs to "
              f"{body['org']['name']!r} ({body['org']['size']} networks)")

        body = get(f"{server.url}/v1/org/{big.org_id}")
        print(f"GET /v1/org/{big.org_id}")
        print(f"  -> {body['name']!r}: members {body['members'][:6]}...")

        a, b = big.members[:2]
        body = get(f"{server.url}/v1/siblings?a={a}&b={b}")
        print(f"GET /v1/siblings?a={a}&b={b}  ->  {body['siblings']}")

        token = big.name.split()[0].lower()
        body = get(f"{server.url}/v1/search?q={token}")
        print(f"GET /v1/search?q={token}  ->  "
              f"{[r['name'] for r in body['results'][:3]]}")

        print("\nhot-swapping to a release-file generation...")
        with tempfile.TemporaryDirectory() as tmp:
            release = Path(tmp) / "borges_as2org.jsonl"
            save_mapping_as2org(mapping, universe.whois, release)
            service.store.load_from_release_file(release)
        body = get(f"{server.url}/healthz")
        print(f"GET /healthz  ->  {body}")

    print("\nseeded Zipfian load against the in-process service:")
    generator = LoadGenerator(service, index.asns(), seed=7)
    report = generator.run(50_000, sibling_fraction=0.1)
    print(f"  {report.requests:,} requests in "
          f"{report.elapsed_seconds:.3f}s = {report.qps:,.0f}/sec "
          f"(mix: {report.mix})")

    stats = service.stats()
    print(f"  response cache: {stats['response_cache']}")
    print(f"  active snapshot: {stats['snapshot']['active']['source']} "
          f"generation {stats['snapshot']['active']['generation']}")


if __name__ == "__main__":
    main()
