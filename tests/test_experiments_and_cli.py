"""Tests for the experiment harness, report rendering, and the CLI."""

import pytest

from repro.config import TEST_UNIVERSE
from repro.cli import main
from repro.errors import ExperimentError
from repro.experiments import (
    EXPERIMENTS,
    ExperimentContext,
    Report,
    render_table,
    run_experiment,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext.build(TEST_UNIVERSE)


class TestReportRendering:
    def test_render_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 1000, "b": "z"}]
        text = render_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_render_table_empty(self):
        assert render_table([]) == "(no rows)"

    def test_render_table_max_rows(self):
        rows = [{"a": i} for i in range(10)]
        text = render_table(rows, max_rows=3)
        assert "7 more rows" in text

    def test_report_render_includes_notes_and_series(self):
        report = Report(
            experiment_id="x",
            title="T",
            rows=[{"a": 1}],
            notes=["hello"],
            series={"s": ([1.0, 2.0], [3.0, 4.0])},
        )
        text = report.render()
        assert "== x: T ==" in text
        assert "note: hello" in text
        assert "series 's'" in text

    def test_number_formatting(self):
        text = render_table([{"v": 1234567}])
        assert "1,234,567" in text


class TestExperimentRegistry:
    def test_all_ten_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table3", "table4", "table5", "table6", "table7",
            "table8", "table9", "fig7", "fig8", "fig9",
        }

    def test_unknown_experiment_raises(self, context):
        with pytest.raises(ExperimentError):
            run_experiment("table99", context=context)

    @pytest.mark.parametrize(
        "experiment_id",
        ["table3", "table4", "table5", "table7", "table8", "table9",
         "fig8", "fig9"],
    )
    def test_experiment_produces_rows(self, context, experiment_id):
        report = run_experiment(experiment_id, context=context)
        assert report.experiment_id == experiment_id
        assert report.rows
        assert report.render()

    def test_fig7_produces_series(self, context):
        report = run_experiment("fig7", context=context)
        assert "singletons" in report.series
        assert "as2org" in report.series

    def test_table6_has_eighteen_rows(self, context):
        # baseline + as2org+ + 15 non-empty feature subsets... the empty
        # subset is skipped, so 2 + 15 = 17 rows.
        report = run_experiment("table6", context=context)
        assert len(report.rows) == 17

    def test_table6_full_borges_beats_baseline(self, context):
        report = run_experiment("table6", context=context)
        by_method = {row["method"]: row for row in report.rows}
        full = by_method["OID_P + N&A + R&R + F"]
        baseline = by_method["AS2Org (baseline)"]
        assert full["theta"] > baseline["theta"]

    def test_table6_monotone_in_features(self, context):
        # Adding features never lowers theta (clusters only grow).
        report = run_experiment("table6", context=context)
        by_method = {row["method"]: row["theta"] for row in report.rows}
        assert by_method["OID_P + N&A + R&R + F"] >= by_method["OID_P"]
        assert by_method["OID_P + R&R"] >= by_method["R&R"]


class TestCLI:
    ARGS = ["--seed", "7", "--orgs", "400"]

    def test_compare(self, capsys):
        assert main(self.ARGS + ["compare"]) == 0
        out = capsys.readouterr().out
        assert "AS2Org" in out and "Borges" in out

    def test_run_with_feature_subset(self, capsys):
        assert main(self.ARGS + ["run", "--features", "oid_p"]) == 0
        out = capsys.readouterr().out
        assert "organization factor" in out

    def test_run_saves_mapping(self, tmp_path, capsys):
        path = tmp_path / "mapping.json"
        assert main(self.ARGS + ["run", "--save-mapping", str(path)]) == 0
        assert path.exists()
        from repro.core.mapping import OrgMapping

        mapping = OrgMapping.load(path)
        assert len(mapping) > 0

    def test_experiment_single(self, capsys):
        assert main(self.ARGS + ["experiment", "table3"]) == 0
        assert "table3" in capsys.readouterr().out

    def test_generate_exports_datasets(self, tmp_path, capsys):
        out_dir = tmp_path / "data"
        assert main(self.ARGS + ["generate", "--out", str(out_dir)]) == 0
        assert (out_dir / "peeringdb_snapshot.json").exists()
        assert (out_dir / "as2org.jsonl").exists()
        assert (out_dir / "apnic_population.csv").exists()

    def test_exported_datasets_load_back(self, tmp_path, capsys):
        out_dir = tmp_path / "data"
        main(self.ARGS + ["generate", "--out", str(out_dir)])
        from repro.apnic import ApnicDataset
        from repro.peeringdb import load_snapshot
        from repro.whois import load_as2org_file

        snapshot = load_snapshot(out_dir / "peeringdb_snapshot.json")
        whois = load_as2org_file(out_dir / "as2org.jsonl")
        apnic = ApnicDataset.load_csv(out_dir / "apnic_population.csv")
        assert len(snapshot) > 0
        assert len(whois) > len(snapshot)
        assert apnic.total_users > 0

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestExtensionCLI:
    ARGS = ["--seed", "7", "--orgs", "400"]

    def test_explain_pair(self, capsys):
        assert main(self.ARGS + ["explain", "3356", "209"]) == 0
        out = capsys.readouterr().out
        assert "siblings" in out
        assert "evidence" in out

    def test_explain_single_asn(self, capsys):
        assert main(self.ARGS + ["explain", "3356"]) == 0
        out = capsys.readouterr().out
        assert "belongs to" in out

    def test_explain_unknown_asn(self, capsys):
        assert main(self.ARGS + ["explain", "999999999"]) == 1

    def test_explain_non_siblings(self, capsys):
        assert main(self.ARGS + ["explain", "262287", "174"]) == 0
        assert "NOT" in capsys.readouterr().out

    def test_evolution(self, capsys):
        assert main(self.ARGS + ["evolution"]) == 0
        out = capsys.readouterr().out
        assert "pending M&A" in out
        assert "merge events" in out

    def test_compare_includes_chen(self, capsys):
        assert main(self.ARGS + ["compare"]) == 0
        assert "chen-mismatch" in capsys.readouterr().out

    def test_run_from_datasets(self, tmp_path, capsys):
        out_dir = tmp_path / "ds"
        main(self.ARGS + ["generate", "--out", str(out_dir)])
        capsys.readouterr()
        assert main(["run", "--from-datasets", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "oid_p" in out and "notes_aka" in out
        assert "organization factor" in out

    def test_run_from_datasets_explicit_features(self, tmp_path, capsys):
        out_dir = tmp_path / "ds"
        main(self.ARGS + ["generate", "--out", str(out_dir)])
        capsys.readouterr()
        assert main(
            ["run", "--from-datasets", str(out_dir), "--features", "oid_p"]
        ) == 0
        assert "organization factor" in capsys.readouterr().out

    def test_run_save_as2org(self, tmp_path, capsys):
        path = tmp_path / "release.jsonl"
        assert main(self.ARGS + ["run", "--save-as2org", str(path)]) == 0
        assert path.exists()
        from repro.whois import load_as2org_file

        assert len(load_as2org_file(path)) > 0
