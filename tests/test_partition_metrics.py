"""Unit + property tests for partition metrics and the beyond-θ analysis."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.ground_truth import score_mapping_against_truth
from repro.metrics.partition import score_partition


def clusters(*groups):
    return [frozenset(g) for g in groups]


class TestPerfectAndDegenerate:
    def test_identical_partitions_score_one(self):
        truth = clusters({1, 2}, {3}, {4, 5, 6})
        scores = score_partition(truth, truth)
        assert scores.pair_precision == 1.0
        assert scores.pair_recall == 1.0
        assert scores.pair_f1 == 1.0
        assert scores.adjusted_rand == pytest.approx(1.0)
        assert scores.v_measure == pytest.approx(1.0)

    def test_all_singletons_vs_grouped(self):
        truth = clusters({1, 2, 3})
        predicted = clusters({1}, {2}, {3})
        scores = score_partition(predicted, truth)
        assert scores.pair_recall == 0.0
        assert scores.pair_precision == 1.0  # no predicted pairs, vacuous
        assert scores.homogeneity == 1.0  # singletons are pure
        assert scores.completeness < 1.0

    def test_one_big_blob(self):
        truth = clusters({1, 2}, {3, 4})
        predicted = clusters({1, 2, 3, 4})
        scores = score_partition(predicted, truth)
        assert scores.pair_recall == 1.0
        assert scores.pair_precision == pytest.approx(2 / 6)
        assert scores.completeness == 1.0
        assert scores.homogeneity < 1.0

    def test_empty_universe(self):
        scores = score_partition([], [])
        assert scores.pair_f1 == 0.0


class TestPartialOverlap:
    def test_split_cluster(self):
        truth = clusters({1, 2, 3, 4})
        predicted = clusters({1, 2}, {3, 4})
        scores = score_partition(predicted, truth)
        # Predicted pairs: (1,2) and (3,4); both correct.
        assert scores.pair_precision == 1.0
        assert scores.pair_recall == pytest.approx(2 / 6)

    def test_wrong_merge_hurts_precision(self):
        truth = clusters({1, 2}, {3, 4})
        predicted = clusters({1, 3}, {2, 4})
        scores = score_partition(predicted, truth)
        assert scores.pair_precision == 0.0
        assert scores.pair_recall == 0.0
        assert scores.adjusted_rand < 0.1

    def test_items_outside_truth_ignored(self):
        truth = clusters({1, 2})
        predicted = clusters({1, 2, 99})
        scores = score_partition(predicted, truth)
        assert scores.pair_precision == 1.0
        assert scores.pair_recall == 1.0


sizes = st.lists(
    st.lists(st.integers(0, 99), min_size=1, max_size=6, unique=True),
    min_size=1,
    max_size=10,
)


def _disjointify(groups):
    seen = set()
    result = []
    for group in groups:
        members = [g for g in group if g not in seen]
        if members:
            seen.update(members)
            result.append(frozenset(members))
    return result


@given(sizes)
def test_property_identity_scores_perfect(groups):
    partition = _disjointify(groups)
    scores = score_partition(partition, partition)
    assert scores.pair_f1 in (0.0, pytest.approx(1.0)) or scores.pair_f1 == 1.0
    assert scores.v_measure == pytest.approx(1.0)


@given(sizes, sizes)
def test_property_scores_bounded(a, b):
    pa, pb = _disjointify(a), _disjointify(b)
    # Restrict both to the common universe so recall is well defined.
    universe = {x for g in pa for x in g} & {x for g in pb for x in g}
    pa = [frozenset(g & universe) for g in pa if g & universe]
    pb = [frozenset(g & universe) for g in pb if g & universe]
    if not pa or not pb:
        return
    scores = score_partition(pa, pb)
    for value in (
        scores.pair_precision, scores.pair_recall, scores.pair_f1,
        scores.homogeneity, scores.completeness, scores.v_measure,
    ):
        assert -1e-9 <= value <= 1.0 + 1e-9
    assert -1.0 - 1e-9 <= scores.adjusted_rand <= 1.0 + 1e-9


class TestAgainstUniverse:
    def test_borges_beats_as2org_on_recall(
        self, borges_mapping, as2org_mapping, universe
    ):
        truth = universe.ground_truth
        borges_scores = score_mapping_against_truth(borges_mapping, truth)
        as2org_scores = score_mapping_against_truth(as2org_mapping, truth)
        # Borges recovers more true sibling pairs...
        assert borges_scores.pair_recall > as2org_scores.pair_recall
        # ...without a precision collapse (the merges are real).
        assert borges_scores.pair_precision > 0.9

    def test_as2org_is_high_precision(self, as2org_mapping, universe):
        scores = score_mapping_against_truth(
            as2org_mapping, universe.ground_truth
        )
        # WHOIS never merges unrelated orgs in the synthetic world.
        assert scores.pair_precision == pytest.approx(1.0)

    def test_v_measure_improves(self, borges_mapping, as2org_mapping, universe):
        truth = universe.ground_truth
        assert (
            score_mapping_against_truth(borges_mapping, truth).v_measure
            > score_mapping_against_truth(as2org_mapping, truth).v_measure
        )
