"""Unit tests for URL parsing, normalization and brand-label extraction."""

import pytest

from repro.errors import URLError
from repro.web.url import (
    brand_label,
    host_of,
    normalize_url,
    parse_url,
    public_suffix,
    registrable_domain,
    same_brand,
)


class TestParseURL:
    def test_plain_http(self):
        parsed = parse_url("http://www.example.com/path")
        assert parsed.scheme == "http"
        assert parsed.host == "www.example.com"
        assert parsed.path == "/path"

    def test_missing_scheme_defaults_http(self):
        assert parse_url("www.example.com").scheme == "http"

    def test_host_lowered(self):
        assert parse_url("HTTPS://WWW.Example.COM/").host == "www.example.com"

    def test_strips_port_and_userinfo(self):
        assert parse_url("http://user@www.example.com:8080/x").host == (
            "www.example.com"
        )

    def test_strips_query_and_fragment(self):
        assert parse_url("http://a.example.com/x?q=1#frag").path == "/x"

    def test_empty_raises(self):
        with pytest.raises(URLError):
            parse_url("   ")

    def test_undotted_host_raises(self):
        with pytest.raises(URLError):
            parse_url("http://localhost/")

    def test_bad_label_raises(self):
        with pytest.raises(URLError):
            parse_url("http://exa$mple.com/")

    def test_unsupported_scheme_raises(self):
        with pytest.raises(URLError):
            parse_url("ftp://files.example.com/")

    def test_url_property_round_trips(self):
        assert parse_url("example.com").url == "http://example.com/"


class TestNormalize:
    def test_idempotent(self):
        url = normalize_url("Example.COM/a?b#c")
        assert normalize_url(url) == url

    def test_trailing_root(self):
        assert normalize_url("https://example.com") == "https://example.com/"


class TestDomains:
    def test_public_suffix_simple(self):
        assert public_suffix("www.example.com") == "com"

    def test_public_suffix_two_level(self):
        assert public_suffix("www.claro.com.pe") == "com.pe"

    def test_public_suffix_three_level(self):
        assert public_suffix("bapenda.riau.go.id") == "riau.go.id"

    def test_registrable_domain(self):
        assert registrable_domain("www.claro.com.pe") == "claro.com.pe"

    def test_registrable_domain_from_url(self):
        assert registrable_domain("https://www.orange.es/x") == "orange.es"

    def test_registrable_domain_bare_suffix(self):
        assert registrable_domain("com.pe") == "com.pe"

    def test_hrvatski_telekom_case(self):
        # The paper's example: http://www.t.ht.hr (Hrvatski Telekom).
        assert registrable_domain("http://www.t.ht.hr") == "t.ht.hr"
        assert brand_label("http://www.t.ht.hr") == "t"


class TestBrandLabel:
    def test_orange_brands_match(self):
        # The §4.3.3 example: www.orange.es and www.orange.pl.
        assert brand_label("https://www.orange.es/") == "orange"
        assert same_brand("https://www.orange.es/", "http://www.orange.pl/")

    def test_claro_variants_differ(self):
        # www.clarochile.cl vs www.claropr.com: different tokens.
        assert brand_label("https://www.clarochile.cl/") == "clarochile"
        assert not same_brand(
            "https://www.clarochile.cl/", "https://www.claropr.com/"
        )

    def test_same_brand_tolerates_garbage(self):
        assert not same_brand("", "https://www.orange.es/")


class TestHostOf:
    def test_extracts_host(self):
        assert host_of("https://x.example.org/path") == "x.example.org"

    def test_none_for_garbage(self):
        assert host_of(":::") is None
