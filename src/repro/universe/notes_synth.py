"""Synthesis of PeeringDB notes/aka free text, with ground-truth labels.

Operators write these fields in many languages and for many purposes;
only some report siblings.  Every synthesized text comes with its truth:
which embedded numbers are genuine sibling ASNs.  The NER engine never
sees these labels — they exist for the validation tables (Table 4) and
for scoring.

Template families:

* sibling reports — prose or bullet lists naming the org's other ASNs
  (the Deutsche Telekom pattern of Fig. 4);
* upstream/peering listings — other orgs' ASNs in provider context (the
  Maxihost pattern of Appendix B; these are *not* siblings);
* decoy administrivia — phones, founding years, max-prefix counts,
  street addresses (as2org+'s regexes trip on these);
* plain prose without numbers (dropped by the input filter).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..types import ASN


@dataclass(frozen=True)
class SynthesizedText:
    """A notes or aka value plus its ground truth."""

    text: str
    true_siblings: Tuple[ASN, ...]
    #: Non-sibling ASNs present in the text (upstreams etc.).
    foreign_asns: Tuple[ASN, ...] = ()
    #: True when the text contains decoy (non-ASN) numbers.
    has_decoys: bool = False


_SIBLING_PROSE: Dict[str, Sequence[str]] = {
    "en": (
        "We are part of the {org} group. Our sibling networks: {asn_list}.",
        "{org} also operates {asn_list} as part of the same organization.",
        "This network belongs to {org}; our other ASNs are {asn_list}.",
        "Formerly independent, now a subsidiary of {org}. Sister networks: "
        "{asn_list}.",
    ),
    "es": (
        "Somos parte del grupo {org}. También operamos {asn_list}.",
        "Esta red pertenece a {org}; nuestras redes hermanas son {asn_list}.",
        "Filial de {org}. Misma organización que {asn_list}.",
    ),
    "pt": (
        "Somos parte do grupo {org}. Também operamos {asn_list}.",
        "Esta rede pertence ao grupo {org}; subsidiária junto com {asn_list}.",
    ),
    "de": (
        "Wir sind Teil der {org} Gruppe. Wir betreiben auch {asn_list}.",
        "Tochtergesellschaft von {org}; gehört zu derselben Organisation wie "
        "{asn_list}.",
    ),
    "fr": (
        "Filiale de {org}. Nous exploitons également {asn_list}.",
        "Ce réseau fait partie du groupe {org} avec {asn_list}.",
    ),
    "id": (
        "Kami adalah bagian dari grup {org}. Kami juga mengoperasikan "
        "{asn_list}.",
        "Jaringan ini adalah anak perusahaan {org} bersama {asn_list}.",
    ),
}

_SIBLING_BULLETS_HEADER: Dict[str, str] = {
    "en": "Our sibling networks (same organization):",
    "es": "Nuestras redes hermanas (misma organización):",
    "pt": "Nossas redes do mesmo grupo:",
    "de": "Unsere Schwester-Netzwerke (Teil der Gruppe):",
    "fr": "Nos réseaux du même groupe (fait partie du groupe):",
    "id": "Jaringan kami yang lain (bagian dari grup):",
}

_UPSTREAM_HEADERS: Dict[str, Sequence[str]] = {
    "en": (
        "We connect directly with the following ISPs,",
        "IP transit from our upstream providers:",
        "Our upstream carriers:",
    ),
    "es": (
        "Estamos conectado a los siguientes proveedores:",
        "Tránsito de nuestros proveedores:",
    ),
    "pt": ("Trânsito IP de nossos provedores:",),
    "de": ("IP transit from our upstream providers:",),
    "fr": ("IP transit from our upstream providers:",),
    "id": ("IP transit from our upstream providers:",),
}

_DECOY_LINES: Sequence[str] = (
    "NOC phone: +{cc} {p1} {p2}.",
    "Founded in {year}. Carrier-grade services since {year}.",
    "Maximum prefixes accepted: {prefixes}.",
    "Office: Suite {suite}, {street} Street, Floor {floor}.",
    "Please open a ticket at our portal, ticket {ticket} format.",
    "as-in: {comm1} as-out: {comm2}",
)

_PLAIN_PROSE: Sequence[str] = (
    "Regional provider offering residential and enterprise connectivity.",
    "Peering policy: open. Please contact our NOC before configuring "
    "sessions.",
    "Content delivery platform with global reach.",
    "Somos un proveedor regional de servicios de Internet.",
    "Provedor regional de acesso à Internet.",
    "Wir sind ein regionaler Internetanbieter.",
)

_AKA_WITH_ASN: Sequence[str] = (
    "{alias} (AS{asn})",
    "{alias}, AS {asn}",
    "formerly {alias} AS{asn}",
)

_AKA_PLAIN: Sequence[str] = (
    "{alias}",
    "{alias} / {alias2}",
)


def _asn_list_text(rng: random.Random, asns: Sequence[ASN]) -> str:
    forms = []
    for asn in asns:
        style = rng.randrange(3)
        if style == 0:
            forms.append(f"AS{asn}")
        elif style == 1:
            forms.append(f"AS {asn}")
        else:
            forms.append(f"ASN {asn}")
    if len(forms) == 1:
        return forms[0]
    return ", ".join(forms[:-1]) + " and " + forms[-1]


def _decoy_line(rng: random.Random) -> str:
    template = rng.choice(_DECOY_LINES)
    return template.format(
        cc=rng.choice((1, 44, 49, 55, 54, 62, 81)),
        p1=rng.randint(200, 999),
        p2=rng.randint(1000, 9999),
        year=rng.randint(1992, 2021),
        prefixes=rng.choice((50, 100, 200, 500, 1000, 2000)),
        suite=rng.randint(100, 999),
        street=rng.randint(1, 9999),
        floor=rng.randint(1, 40),
        ticket=rng.randint(10000, 99999),
        comm1=rng.randint(64512, 65534),
        comm2=rng.randint(64512, 65534),
    )


class NotesSynthesizer:
    """Builds notes/aka texts for one universe, deterministically."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(("notes", seed).__repr__())

    def sibling_notes(
        self,
        org_name: str,
        siblings: Sequence[ASN],
        language: str = "en",
        with_decoys: bool = False,
        with_upstreams: Sequence[ASN] = (),
    ) -> SynthesizedText:
        """Notes that genuinely report sibling ASNs (± noise sections)."""
        rng = self._rng
        language = language if language in _SIBLING_PROSE else "en"
        parts: List[str] = []
        if rng.random() < 0.5:
            template = rng.choice(tuple(_SIBLING_PROSE[language]))
            parts.append(
                template.format(org=org_name, asn_list=_asn_list_text(rng, siblings))
            )
        else:
            header = _SIBLING_BULLETS_HEADER[language]
            bullets = "\n".join(f"- AS{asn}" for asn in siblings)
            parts.append(f"{header}\n{bullets}")
        if with_upstreams:
            parts.append(self._upstream_block(language, with_upstreams))
        has_decoys = False
        if with_decoys:
            parts.append(_decoy_line(rng))
            has_decoys = True
        rng.shuffle(parts)
        return SynthesizedText(
            text="\n\n".join(parts),
            true_siblings=tuple(sorted(siblings)),
            foreign_asns=tuple(sorted(with_upstreams)),
            has_decoys=has_decoys,
        )

    def upstream_notes(
        self,
        upstreams: Sequence[ASN],
        language: str = "en",
        with_decoys: bool = False,
    ) -> SynthesizedText:
        """The Maxihost pattern: numeric text with zero siblings."""
        parts = [self._upstream_block(language, upstreams)]
        has_decoys = False
        if with_decoys or self._rng.random() < 0.3:
            parts.append(_decoy_line(self._rng))
            has_decoys = True
        return SynthesizedText(
            text="\n\n".join(parts),
            true_siblings=(),
            foreign_asns=tuple(sorted(upstreams)),
            has_decoys=has_decoys,
        )

    def decoy_notes(self) -> SynthesizedText:
        """Numeric text that contains no ASNs at all (phones, years...)."""
        lines = [_decoy_line(self._rng)]
        if self._rng.random() < 0.4:
            lines.append(_decoy_line(self._rng))
        return SynthesizedText(
            text="\n".join(lines), true_siblings=(), has_decoys=True
        )

    def plain_notes(self) -> SynthesizedText:
        """Prose without any digits (removed by the input filter)."""
        return SynthesizedText(
            text=self._rng.choice(tuple(_PLAIN_PROSE)), true_siblings=()
        )

    def aka(
        self,
        alias: str,
        sibling_asn: Optional[ASN] = None,
        alias2: str = "",
    ) -> SynthesizedText:
        """An aka value, optionally naming a sibling ASN."""
        if sibling_asn is not None:
            template = self._rng.choice(tuple(_AKA_WITH_ASN))
            return SynthesizedText(
                text=template.format(alias=alias, asn=sibling_asn),
                true_siblings=(sibling_asn,),
            )
        template = self._rng.choice(tuple(_AKA_PLAIN))
        return SynthesizedText(
            text=template.format(alias=alias, alias2=alias2 or alias.upper()),
            true_siblings=(),
        )

    def _upstream_block(self, language: str, upstreams: Sequence[ASN]) -> str:
        headers = _UPSTREAM_HEADERS.get(language, _UPSTREAM_HEADERS["en"])
        header = self._rng.choice(tuple(headers))
        if self._rng.random() < 0.6:
            bullets = "\n".join(f"- Provider (AS{asn})" for asn in upstreams)
            return f"{header}\n{bullets}"
        inline = ", ".join(f"AS{asn}" for asn in upstreams)
        return f"{header} {inline}"
