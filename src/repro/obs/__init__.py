"""Observability: metrics, spans, trace context, events, SLOs, manifests.

Composable but independent pieces:

* :class:`MetricsRegistry` — counters, gauges and fixed-bucket histograms
  (process-global by default, injectable for tests);
* :class:`Tracer` — nested wall-clock spans with attributes, error
  status, and W3C trace/span IDs;
* :class:`TraceContext` — W3C ``traceparent`` parse/generate with
  contextvar propagation (:func:`use_trace_context`), joining HTTP
  requests, span trees, events and exemplars under one trace ID;
* :class:`EventLog` — structured JSONL events (bounded ring + optional
  file sink) stamped with the current trace ID;
* :class:`SLOTracker` — rolling-window availability/latency objectives
  with multi-window burn-rate alerting, plus :class:`ExemplarStore`
  (slow-request span trees) and :class:`RuntimeSampler` (process gauges);
* exporters — :func:`build_manifest`/:func:`write_manifest` (the JSON run
  manifest) and :func:`render_prometheus` (text exposition format).

The hot paths (pipeline features, LLM client, scraper, favicon API,
experiment runner, serve tier) are instrumented against the global
registry/tracer/event log, so ``borges run --telemetry-out run.json``
captures a full run for free.
"""

from .context import (
    SPAN_ID_HEX_LENGTH,
    TRACE_ID_HEX_LENGTH,
    TRACE_RESPONSE_HEADER,
    TRACEPARENT_HEADER,
    TraceContext,
    current_trace_context,
    ensure_trace_context,
    generate_span_id,
    generate_trace_id,
    new_trace_context,
    parse_traceparent,
    reset_trace_context,
    set_trace_context,
    use_trace_context,
)
from .log import (
    DEFAULT_CAPACITY,
    SEVERITIES,
    EventLog,
    get_event_log,
    set_event_log,
    use_event_log,
)
from .manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    config_fingerprint,
    load_manifest,
    write_manifest,
)
from .process import PEAK_RSS_GAUGE, peak_rss_bytes, record_peak_rss
from .prometheus import render_prometheus
from .registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_LOOKUP_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile,
    set_registry,
    use_registry,
)
from .slo import (
    DEFAULT_BURN_RATE_THRESHOLD,
    DEFAULT_EXEMPLAR_THRESHOLD,
    ExemplarStore,
    RuntimeSampler,
    SLOConfig,
    SLOTracker,
)
from .tracer import Span, Tracer, get_tracer, set_tracer, use_tracer

__all__ = [
    "SPAN_ID_HEX_LENGTH",
    "TRACE_ID_HEX_LENGTH",
    "TRACE_RESPONSE_HEADER",
    "TRACEPARENT_HEADER",
    "TraceContext",
    "current_trace_context",
    "ensure_trace_context",
    "generate_span_id",
    "generate_trace_id",
    "new_trace_context",
    "parse_traceparent",
    "reset_trace_context",
    "set_trace_context",
    "use_trace_context",
    "DEFAULT_CAPACITY",
    "SEVERITIES",
    "EventLog",
    "get_event_log",
    "set_event_log",
    "use_event_log",
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "config_fingerprint",
    "load_manifest",
    "write_manifest",
    "PEAK_RSS_GAUGE",
    "peak_rss_bytes",
    "record_peak_rss",
    "render_prometheus",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_LOOKUP_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "percentile",
    "set_registry",
    "use_registry",
    "DEFAULT_BURN_RATE_THRESHOLD",
    "DEFAULT_EXEMPLAR_THRESHOLD",
    "ExemplarStore",
    "RuntimeSampler",
    "SLOConfig",
    "SLOTracker",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
