"""Shared fixtures: one small deterministic universe per test session.

Building the TEST_UNIVERSE (~400 orgs) takes ~50 ms and the pipeline
~50 ms more, so session-scoping them keeps the whole suite fast while
letting every test poke at realistic data.
"""

from __future__ import annotations

import pytest

from repro.baselines import build_as2org_mapping, build_as2orgplus_mapping
from repro.config import TEST_UNIVERSE, BorgesConfig
from repro.core import BorgesPipeline
from repro.llm import make_default_client
from repro.universe import generate_universe
from repro.web.favicon import FaviconAPI
from repro.web.scraper import HeadlessScraper


@pytest.fixture(scope="session")
def universe():
    """The standard small test universe (seed 7, ~400 orgs)."""
    return generate_universe(TEST_UNIVERSE)


@pytest.fixture(scope="session")
def pipeline(universe):
    return BorgesPipeline(universe.whois, universe.pdb, universe.web)


@pytest.fixture(scope="session")
def borges_result(pipeline):
    return pipeline.run()


@pytest.fixture(scope="session")
def borges_mapping(borges_result):
    return borges_result.mapping


@pytest.fixture(scope="session")
def as2org_mapping(universe):
    return build_as2org_mapping(universe.whois)


@pytest.fixture(scope="session")
def as2orgplus_mapping(universe):
    return build_as2orgplus_mapping(universe.whois, universe.pdb)


@pytest.fixture()
def llm_client():
    """A fresh offline LLM client (per-test: usage counters start at 0)."""
    return make_default_client()


@pytest.fixture()
def scraper(universe):
    return HeadlessScraper(universe.web)


@pytest.fixture()
def favicon_api(universe):
    return FaviconAPI(universe.web)
