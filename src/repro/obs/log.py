"""Structured JSONL event log: the durable record of what the system did.

Metrics answer "how many"; spans answer "how long"; the event log
answers "what happened, in order, to *this* request".  An
:class:`EventLog` holds a bounded in-memory ring (so a serving process
can be interrogated over HTTP without unbounded growth) and optionally
appends every retained event to a JSONL file sink (``borges serve
--access-log``).  Each event is one flat JSON object::

    {"ts": 1754556000.123, "event": "http.access", "severity": "info",
     "trace_id": "4bf92f35…", "endpoint": "asn", "status": 200,
     "admission": "admitted", "generation": 3, "latency_ms": 0.412}

The current :class:`~repro.obs.context.TraceContext` is stamped onto
every event automatically, which is what makes the log joinable with
response headers, span trees and SLO exemplars.

High-volume event classes (the per-request access log) pass a
``sample`` rate: sampling is decided by a seeded RNG *before* the ring
is touched, so a sampled-out event costs one random draw.  Severities
follow stdlib logging (``debug`` < ``info`` < ``warning`` < ``error``)
and events below ``min_severity`` are dropped at the source.

Like the registry and tracer, a process-global instance backs
zero-config emission (:func:`get_event_log`); tests and the CLI swap in
a configured one via :func:`use_event_log`/:func:`set_event_log`.
"""

from __future__ import annotations

import json
import random
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..errors import ConfigError
from .context import current_trace_context

#: Severity names in ascending order of urgency.
SEVERITIES = ("debug", "info", "warning", "error")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

#: Default in-memory ring capacity (events, not bytes).
DEFAULT_CAPACITY = 2048


class EventLog:
    """Bounded ring of structured events with an optional JSONL file sink."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        path: Optional[Union[str, Path]] = None,
        min_severity: str = "debug",
        sample_seed: int = 0x10C,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"event log capacity must be >= 1: {capacity}")
        if min_severity not in _SEVERITY_RANK:
            raise ConfigError(
                f"unknown severity {min_severity!r}; known: {SEVERITIES}"
            )
        self._ring: "deque[Dict[str, object]]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._min_rank = _SEVERITY_RANK[min_severity]
        self._rng = random.Random(sample_seed)
        self._path = Path(path) if path is not None else None
        self._file = None
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self._path, "a", encoding="utf-8")
        self.emitted = 0
        self.sampled_out = 0
        self.suppressed = 0
        self.written = 0

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    @property
    def path(self) -> Optional[Path]:
        return self._path

    def emit(
        self,
        name: str,
        severity: str = "info",
        sample: float = 1.0,
        **fields: object,
    ) -> Optional[Dict[str, object]]:
        """Record one event; returns it, or ``None`` when dropped.

        ``sample`` < 1 keeps that fraction of calls (seeded, so a run's
        kept set is reproducible).  Severities at ``warning`` and above
        are never sampled away — losing the rare events is exactly the
        failure mode sampling must not introduce.
        """
        rank = _SEVERITY_RANK.get(severity)
        if rank is None:
            raise ConfigError(
                f"unknown severity {severity!r}; known: {SEVERITIES}"
            )
        if rank < self._min_rank:
            self.suppressed += 1
            return None
        if sample < 1.0 and rank < _SEVERITY_RANK["warning"]:
            if self._rng.random() >= sample:
                self.sampled_out += 1
                return None
        event: Dict[str, object] = {
            "ts": round(time.time(), 6),
            "event": name,
            "severity": severity,
        }
        context = current_trace_context()
        if context is not None:
            event["trace_id"] = context.trace_id
        event.update(fields)
        with self._lock:
            self._ring.append(event)
            self.emitted += 1
            if self._file is not None:
                self._file.write(
                    json.dumps(event, sort_keys=True, default=str) + "\n"
                )
                self.written += 1
                # Flush every line: the sink sits on request paths that
                # are milliseconds-scale, and a buffered access log is
                # useless to an operator tailing it live.
                self._file.flush()
        return event

    # -- reading -----------------------------------------------------------

    def events(
        self, name: Optional[str] = None, limit: int = 0
    ) -> List[Dict[str, object]]:
        """Retained events (oldest first), optionally filtered by name."""
        with self._lock:
            out = [
                dict(event)
                for event in self._ring
                if name is None or event.get("event") == name
            ]
        if limit > 0:
            out = out[-limit:]
        return out

    def tail(self, n: int = 10) -> List[Dict[str, object]]:
        return self.events(limit=n)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            buffered = len(self._ring)
        return {
            "emitted": self.emitted,
            "sampled_out": self.sampled_out,
            "suppressed": self.suppressed,
            "written": self.written,
            "buffered": buffered,
            "capacity": self.capacity,
            "path": str(self._path) if self._path is not None else "",
        }

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- process-global default ----------------------------------------------------

_GLOBAL_EVENT_LOG = EventLog()


def get_event_log() -> EventLog:
    """The process-global event log instrumented modules default to."""
    return _GLOBAL_EVENT_LOG


def set_event_log(log: EventLog) -> EventLog:
    """Swap the global event log; returns the previous one."""
    global _GLOBAL_EVENT_LOG
    previous = _GLOBAL_EVENT_LOG
    _GLOBAL_EVENT_LOG = log
    return previous


@contextmanager
def use_event_log(log: Optional[EventLog] = None) -> Iterator[EventLog]:
    """Temporarily install *log* (default: a fresh one) as global."""
    log = log or EventLog()
    previous = set_event_log(log)
    try:
        yield log
    finally:
        set_event_log(previous)
