"""Throughput benches: universe generation and pipeline stages at scale.

These are genuine performance measurements (multiple rounds) of the
system's hot paths: generating a universe, running the full pipeline,
scraping/resolving, and computing θ over large size vectors.
"""

import time

import pytest

from repro.config import UniverseConfig
from repro.core import ArtifactStore, BorgesPipeline
from repro.metrics.org_factor import org_factor
from repro.universe import generate_universe
from repro.web.scraper import HeadlessScraper


SMALL = UniverseConfig(seed=11, n_organizations=800, total_users=30_000_000)


@pytest.fixture(scope="module")
def small_universe():
    return generate_universe(SMALL)


def test_bench_universe_generation(benchmark):
    universe = benchmark(lambda: generate_universe(SMALL))
    assert len(universe.whois) > 800


def test_bench_full_pipeline(benchmark, small_universe):
    def run():
        pipeline = BorgesPipeline(
            small_universe.whois, small_universe.pdb, small_universe.web
        )
        return pipeline.run().mapping

    mapping = benchmark(run)
    assert len(mapping) > 0


def test_bench_warm_cache_pipeline(benchmark, small_universe):
    """Warm-cache runs against a primed artifact store, vs the cold run.

    The benchmark proper measures the warm path (every stage served from
    the content-addressed store); the one-off cold wall time that primed
    the store is recorded in ``extra_info`` so trajectories can track the
    cold/warm ratio.
    """
    store = ArtifactStore()

    def run():
        pipeline = BorgesPipeline(
            small_universe.whois, small_universe.pdb, small_universe.web,
            artifact_store=store,
        )
        return pipeline.run()

    cold_start = time.perf_counter()
    cold = run()
    cold_seconds = time.perf_counter() - cold_start
    assert all(r["status"] == "ok" for r in cold.stage_records)

    warm = benchmark(run)
    assert all(r["status"] == "cached" for r in warm.stage_records)
    assert warm.mapping.clusters() == cold.mapping.clusters()
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)


def test_bench_scraper_resolution(benchmark, small_universe):
    urls = [
        net.website for net in small_universe.pdb.nets_with_websites()
    ]

    def resolve_all():
        scraper = HeadlessScraper(small_universe.web)
        return sum(1 for url in urls if scraper.resolve(url).ok)

    reachable = benchmark(resolve_all)
    assert 0 < reachable <= len(urls)


def test_bench_org_factor_large_vector(benchmark):
    # 100k organizations with a heavy tail: θ must stay sub-second.
    sizes = [1] * 90_000 + [2] * 8_000 + [10] * 1_500 + [500] * 12
    theta = benchmark(lambda: org_factor(sizes))
    assert 0.0 < theta < 1.0


def test_bench_asrank(benchmark, small_universe):
    from repro.asrank import compute_rank

    rank = benchmark(lambda: compute_rank(small_universe.topology))
    assert len(rank) == len(small_universe.topology)
