"""Table 8 — top 20 marginal AS population growths.

Paper: led by Deutsche Telekom (+21.6M), Telkom Indonesia (+20.5M),
Charter, Virgin, TIGO, Claro...  The shape: the top rows are the
multinational access conglomerates the universe plants (Deutsche
Telekom, Telkom Indonesia, TIGO, Claro, Digicel), each gaining a large
fraction of its merged population.
"""

from conftest import run_and_render

#: Canonical conglomerates that must surface among the top growths.
EXPECTED_LEADERS = ("Digicel", "Tigo", "Claro", "Telekom", "Telkom")


def test_table8_top_population_growth(benchmark, ctx):
    report = run_and_render(benchmark, ctx, "table8")
    assert len(report.rows) == 20

    companies = " | ".join(str(row["company"]) for row in report.rows)
    hits = sum(1 for name in EXPECTED_LEADERS if name in companies)
    assert hits >= 3, companies

    # Rows sorted by difference; each difference consistent.
    diffs = [row["difference"] for row in report.rows]
    assert diffs == sorted(diffs, reverse=True)
    for row in report.rows:
        assert row["difference"] == row["borges_users"] - row["as2org_users"]
        assert row["difference"] > 0
