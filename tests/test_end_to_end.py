"""End-to-end integration tests: full-pipeline invariants and determinism."""

import pytest

from repro.config import TEST_UNIVERSE, BorgesConfig
from repro.core import BorgesPipeline
from repro.metrics import org_factor_from_mapping
from repro.universe import generate_universe


class TestPipelineInvariants:
    def test_mapping_covers_exactly_the_whois_universe(self, borges_mapping, universe):
        assert borges_mapping.universe_size == len(universe.whois)
        assert sum(borges_mapping.sizes()) == len(universe.whois)

    def test_borges_refines_as2org_upward(self, borges_mapping, as2org_mapping):
        """Every AS2Org cluster is contained in one Borges cluster: the
        pipeline only merges, never splits, the compulsory WHOIS view."""
        for cluster in as2org_mapping.clusters():
            members = sorted(cluster)
            first = borges_mapping.cluster_of(members[0])
            for member in members[1:]:
                assert member in first

    def test_theta_ordering(self, as2org_mapping, as2orgplus_mapping, borges_mapping):
        theta_base = org_factor_from_mapping(as2org_mapping)
        theta_plus = org_factor_from_mapping(as2orgplus_mapping)
        theta_borges = org_factor_from_mapping(borges_mapping)
        assert theta_base <= theta_plus <= theta_borges
        assert theta_borges > theta_base  # strict improvement

    def test_org_count_ordering(self, as2org_mapping, as2orgplus_mapping, borges_mapping):
        assert len(borges_mapping) <= len(as2orgplus_mapping) <= len(as2org_mapping)

    def test_feature_table_present(self, borges_result):
        assert len(borges_result.feature_table()) == 5

    def test_web_result_attached(self, borges_result):
        assert borges_result.web_result is not None
        assert borges_result.web_result.stats.reachable_urls > 0

    def test_ner_results_attached(self, borges_result):
        assert borges_result.ner_results
        assert any(r.siblings for r in borges_result.ner_results)


class TestDeterminism:
    def test_full_run_reproducible(self):
        universe = generate_universe(TEST_UNIVERSE)

        def run():
            pipeline = BorgesPipeline(universe.whois, universe.pdb, universe.web)
            return pipeline.run().mapping

        first, second = run(), run()
        assert first.clusters() == second.clusters()

    def test_fresh_universe_same_result(self, borges_mapping):
        universe = generate_universe(TEST_UNIVERSE)
        pipeline = BorgesPipeline(universe.whois, universe.pdb, universe.web)
        assert pipeline.run().mapping.clusters() == borges_mapping.clusters()


class TestFeatureSubsets:
    @pytest.mark.parametrize("feature", ["oid_p", "notes_aka", "rr", "favicons"])
    def test_single_feature_runs(self, universe, feature):
        config = BorgesConfig().with_features(feature)
        pipeline = BorgesPipeline(
            universe.whois, universe.pdb, universe.web, config
        )
        result = pipeline.run()
        assert feature in result.features
        assert "oid_w" in result.features  # always present

    def test_no_features_equals_as2org(self, universe, as2org_mapping):
        config = BorgesConfig().with_features()
        pipeline = BorgesPipeline(
            universe.whois, universe.pdb, universe.web, config
        )
        mapping = pipeline.run().mapping
        assert mapping.clusters() == as2org_mapping.clusters()

    def test_subset_theta_bounded_by_full(self, universe, borges_mapping):
        config = BorgesConfig().with_features("rr")
        pipeline = BorgesPipeline(
            universe.whois, universe.pdb, universe.web, config
        )
        subset_theta = org_factor_from_mapping(pipeline.run().mapping)
        assert subset_theta <= org_factor_from_mapping(borges_mapping)


class TestLLMCosts:
    def test_input_filter_reduces_llm_calls(self, universe):
        def calls(input_filter: bool) -> int:
            config = BorgesConfig(
                ner_input_filter=input_filter
            ).with_features("notes_aka")
            import dataclasses

            config = dataclasses.replace(
                config, ner_input_filter=input_filter
            )
            pipeline = BorgesPipeline(
                universe.whois, universe.pdb, universe.web, config
            )
            pipeline.run()
            return pipeline.client.request_count

        assert calls(True) < calls(False)

    def test_cache_hits_on_second_run(self, universe):
        pipeline = BorgesPipeline(universe.whois, universe.pdb, universe.web)
        pipeline.run()
        first_requests = pipeline.client.request_count
        pipeline.run()
        # Second run re-chats but hits the deterministic cache: the
        # backend call count (request_count counts real completions)
        # must not double.
        assert pipeline.client.request_count == first_requests
