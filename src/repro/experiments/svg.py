"""Dependency-free SVG rendering for the regenerated figures.

The evaluation figures are data series; this module draws them as clean
standalone SVG files (line charts for Fig. 7/8-style series, grouped bar
charts for Fig. 9-style tables) using nothing but string assembly — no
plotting library exists in the offline environment, and none is needed
for publication-quality vector output.

Used by ``borges experiment <id> --svg-dir DIR``.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .report import Report

#: Colour cycle (colour-blind-safe-ish).
PALETTE = ("#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951", "#9c6b4e")

_WIDTH = 640
_HEIGHT = 400
_MARGIN_LEFT = 64
_MARGIN_RIGHT = 24
_MARGIN_TOP = 40
_MARGIN_BOTTOM = 48


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.2f}"


def _scale(
    value: float, lo: float, hi: float, out_lo: float, out_hi: float
) -> float:
    span = (hi - lo) or 1.0
    return out_lo + (value - lo) / span * (out_hi - out_lo)


def _axis_ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    span = (hi - lo) or 1.0
    return [lo + span * i / (count - 1) for i in range(count)]


def _frame(title: str, body: List[str]) -> str:
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        'font-family="sans-serif" font-size="12">\n'
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>\n'
        f'<text x="{_WIDTH / 2}" y="22" text-anchor="middle" '
        f'font-size="15" font-weight="bold">{html.escape(title)}</text>\n'
    )
    return head + "\n".join(body) + "\n</svg>\n"


def line_chart_svg(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    max_points: int = 600,
) -> str:
    """Render named (x, y) series as a multi-line chart."""
    if not series:
        raise ValueError("no series to draw")
    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)

    plot_left, plot_right = _MARGIN_LEFT, _WIDTH - _MARGIN_RIGHT
    plot_top, plot_bottom = _MARGIN_TOP, _HEIGHT - _MARGIN_BOTTOM
    body: List[str] = []

    # Axes + gridlines + tick labels.
    for tick in _axis_ticks(y_lo, y_hi):
        y = _scale(tick, y_lo, y_hi, plot_bottom, plot_top)
        body.append(
            f'<line x1="{plot_left}" y1="{y:.1f}" x2="{plot_right}" '
            f'y2="{y:.1f}" stroke="#ddd"/>'
        )
        body.append(
            f'<text x="{plot_left - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{_fmt(tick)}</text>'
        )
    for tick in _axis_ticks(x_lo, x_hi):
        x = _scale(tick, x_lo, x_hi, plot_left, plot_right)
        body.append(
            f'<text x="{x:.1f}" y="{plot_bottom + 18}" '
            f'text-anchor="middle">{_fmt(tick)}</text>'
        )
    body.append(
        f'<rect x="{plot_left}" y="{plot_top}" '
        f'width="{plot_right - plot_left}" '
        f'height="{plot_bottom - plot_top}" fill="none" stroke="#888"/>'
    )

    # Series polylines (decimated to max_points).
    for i, (name, (xs, ys)) in enumerate(sorted(series.items())):
        colour = PALETTE[i % len(PALETTE)]
        step = max(1, len(xs) // max_points)
        points = []
        for j in range(0, len(xs), step):
            px = _scale(xs[j], x_lo, x_hi, plot_left, plot_right)
            py = _scale(ys[j], y_lo, y_hi, plot_bottom, plot_top)
            points.append(f"{px:.1f},{py:.1f}")
        if points and (len(xs) - 1) % step:
            px = _scale(xs[-1], x_lo, x_hi, plot_left, plot_right)
            py = _scale(ys[-1], y_lo, y_hi, plot_bottom, plot_top)
            points.append(f"{px:.1f},{py:.1f}")
        body.append(
            f'<polyline points="{" ".join(points)}" fill="none" '
            f'stroke="{colour}" stroke-width="2"/>'
        )
        body.append(
            f'<text x="{plot_left + 10}" y="{plot_top + 16 + 16 * i}" '
            f'fill="{colour}">{html.escape(name)}</text>'
        )

    if x_label:
        body.append(
            f'<text x="{(plot_left + plot_right) / 2}" y="{_HEIGHT - 10}" '
            f'text-anchor="middle">{html.escape(x_label)}</text>'
        )
    if y_label:
        body.append(
            f'<text x="16" y="{(plot_top + plot_bottom) / 2}" '
            f'text-anchor="middle" transform="rotate(-90 16 '
            f'{(plot_top + plot_bottom) / 2})">{html.escape(y_label)}</text>'
        )
    return _frame(title, body)


def bar_chart_svg(
    rows: Sequence[Dict[str, object]],
    label_key: str,
    value_keys: Sequence[str],
    title: str = "",
) -> str:
    """Render table rows as a grouped bar chart (the Fig. 9 shape)."""
    if not rows:
        raise ValueError("no rows to draw")
    values = [
        float(row[key])  # type: ignore[arg-type]
        for row in rows
        for key in value_keys
    ]
    v_hi = max(values) or 1.0

    plot_left, plot_right = _MARGIN_LEFT, _WIDTH - _MARGIN_RIGHT
    plot_top, plot_bottom = _MARGIN_TOP, _HEIGHT - _MARGIN_BOTTOM - 40
    body: List[str] = []

    for tick in _axis_ticks(0.0, v_hi):
        y = _scale(tick, 0.0, v_hi, plot_bottom, plot_top)
        body.append(
            f'<line x1="{plot_left}" y1="{y:.1f}" x2="{plot_right}" '
            f'y2="{y:.1f}" stroke="#ddd"/>'
        )
        body.append(
            f'<text x="{plot_left - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{_fmt(tick)}</text>'
        )

    group_width = (plot_right - plot_left) / len(rows)
    bar_width = max(2.0, group_width * 0.8 / len(value_keys))
    for g, row in enumerate(rows):
        group_x = plot_left + g * group_width
        for i, key in enumerate(value_keys):
            value = float(row[key])  # type: ignore[arg-type]
            top = _scale(value, 0.0, v_hi, plot_bottom, plot_top)
            x = group_x + group_width * 0.1 + i * bar_width
            body.append(
                f'<rect x="{x:.1f}" y="{top:.1f}" width="{bar_width:.1f}" '
                f'height="{plot_bottom - top:.1f}" '
                f'fill="{PALETTE[i % len(PALETTE)]}"/>'
            )
        label = html.escape(str(row[label_key]))
        cx = group_x + group_width / 2
        body.append(
            f'<text x="{cx:.1f}" y="{plot_bottom + 10}" text-anchor="end" '
            f'transform="rotate(-45 {cx:.1f} {plot_bottom + 10})" '
            f'font-size="10">{label}</text>'
        )
    for i, key in enumerate(value_keys):
        body.append(
            f'<text x="{plot_left + 10}" y="{plot_top + 16 + 16 * i}" '
            f'fill="{PALETTE[i % len(PALETTE)]}">{html.escape(key)}</text>'
        )
    body.append(
        f'<rect x="{plot_left}" y="{plot_top}" '
        f'width="{plot_right - plot_left}" '
        f'height="{plot_bottom - plot_top}" fill="none" stroke="#888"/>'
    )
    return _frame(title, body)


#: For Fig.-9-style reports: which columns become bars.
_BAR_EXPERIMENTS = {
    "fig9": ("hypergiant", ("as2org", "as2org_plus", "borges")),
}


def report_to_svg(report: Report) -> Optional[str]:
    """Best-effort SVG for one report; ``None`` if nothing drawable."""
    if report.series:
        return line_chart_svg(
            {name: (list(xs), list(ys)) for name, (xs, ys) in report.series.items()},
            title=report.title,
        )
    spec = _BAR_EXPERIMENTS.get(report.experiment_id)
    if spec and report.rows:
        label_key, value_keys = spec
        return bar_chart_svg(
            report.rows, label_key=label_key, value_keys=value_keys,
            title=report.title,
        )
    return None


def save_report_svg(
    report: Report, directory: Union[str, Path]
) -> Optional[Path]:
    """Write the report's SVG into *directory*; returns the path or None."""
    svg = report_to_svg(report)
    if svg is None:
        return None
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{report.experiment_id}.svg"
    path.write_text(svg, encoding="utf-8")
    return path
