"""Unit tests for configuration dataclasses and feature-combo helpers."""

import dataclasses

import pytest

from repro.config import (
    ALL_FEATURES,
    BorgesConfig,
    LLMConfig,
    ScraperConfig,
    UniverseConfig,
    all_feature_combos,
    feature_combo_label,
)
from repro.errors import ConfigError


class TestLLMConfig:
    def test_defaults_validate(self):
        LLMConfig().validate()

    def test_paper_sampling_settings(self):
        config = LLMConfig()
        assert config.temperature == 0.0
        assert config.top_p == 1.0

    def test_bad_temperature_rejected(self):
        with pytest.raises(ConfigError):
            LLMConfig(temperature=3.0).validate()

    def test_bad_top_p_rejected(self):
        with pytest.raises(ConfigError):
            LLMConfig(top_p=1.5).validate()

    def test_bad_error_rate_rejected(self):
        with pytest.raises(ConfigError):
            LLMConfig(extraction_error_rate=1.5).validate()

    def test_zero_max_tokens_rejected(self):
        with pytest.raises(ConfigError):
            LLMConfig(max_tokens=0).validate()


class TestScraperConfig:
    def test_defaults_validate(self):
        ScraperConfig().validate()

    def test_zero_hops_rejected(self):
        with pytest.raises(ConfigError):
            ScraperConfig(max_redirect_hops=0).validate()

    def test_negative_timeout_rejected(self):
        with pytest.raises(ConfigError):
            ScraperConfig(timeout_seconds=-1).validate()


class TestBorgesConfig:
    def test_defaults_enable_all_features(self):
        assert BorgesConfig().features == frozenset(ALL_FEATURES)

    def test_with_features_restricts(self):
        config = BorgesConfig().with_features("rr")
        assert config.has("rr")
        assert not config.has("oid_p")

    def test_unknown_feature_rejected(self):
        with pytest.raises(ConfigError):
            BorgesConfig(features=frozenset({"bogus"})).validate()

    def test_empty_feature_set_is_legal(self):
        # The AS2Org-only configuration.
        config = BorgesConfig().with_features()
        assert not config.features


class TestUniverseConfig:
    def test_defaults_validate(self):
        UniverseConfig().validate()

    def test_too_few_orgs_rejected(self):
        with pytest.raises(ConfigError):
            UniverseConfig(n_organizations=3).validate()

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            UniverseConfig(website_rate=1.2).validate()

    def test_scaled_shrinks_org_count(self):
        config = UniverseConfig().scaled(0.1)
        assert config.n_organizations == UniverseConfig().n_organizations // 10

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            UniverseConfig().scaled(0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            UniverseConfig().seed = 1  # type: ignore[misc]


class TestFeatureCombos:
    def test_sixteen_combos(self):
        assert len(all_feature_combos()) == 16

    def test_combos_unique(self):
        combos = all_feature_combos()
        assert len(set(combos)) == len(combos)

    def test_empty_combo_present(self):
        assert frozenset() in all_feature_combos()

    def test_full_combo_present(self):
        assert frozenset(ALL_FEATURES) in all_feature_combos()

    def test_label_empty_is_baseline(self):
        assert "AS2Org" in feature_combo_label(frozenset())

    def test_label_order_is_stable(self):
        label = feature_combo_label(frozenset(ALL_FEATURES))
        assert label == "OID_P + N&A + R&R + F"
