"""The web-based inference module (§4.3): R&R matching and favicons.

Two sub-features over the scraped web:

* **Final URL matching (R&R, §4.3.2)** — resolve every PeeringDB website
  through refreshes and redirects; networks landing on the same final URL
  (after the Appendix-D.2 blocklist) are siblings.
* **Favicon classification (§4.3.3)** — group final URLs by favicon;
  same favicon + same brand token ("subdomain") groups directly (after
  the Appendix-D.1 blocklist); groups whose tokens differ go to the LLM
  classifier (Listing 3), which decides company vs web-framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..config import BorgesConfig
from ..errors import LLMResponseError
from ..logutil import get_logger
from ..llm.client import ChatClient
from ..llm.parsing import parse_classifier_reply
from ..llm.prompts import render_classifier_messages
from ..obs.registry import MetricsRegistry, get_registry
from ..obs.tracer import Tracer, get_tracer
from ..peeringdb import PDBSnapshot
from ..types import ASN, Cluster, FaviconHash, URL
from ..web.blocklists import is_blocked_brand, is_blocked_final_url
from ..web.favicon import FaviconAPI
from ..web.scraper import HeadlessScraper
from ..web.url import brand_label

_LOG = get_logger("core.web_inference")

#: WebInferenceStats fields owned by the favicon phase (the rest belong
#: to the scrape and R&R phases).
_FAVICON_STAT_FIELDS = (
    "favicons_fetched",
    "unique_favicons",
    "shared_favicon_groups",
    "same_subdomain_groups",
    "llm_groups_accepted",
    "llm_groups_rejected",
)


@dataclass
class WebInferenceStats:
    """Counters mirroring §5.2's web accounting."""

    nets_with_website: int = 0
    unique_urls: int = 0
    reachable_urls: int = 0
    unique_final_urls: int = 0
    blocked_final_urls: int = 0
    favicons_fetched: int = 0
    unique_favicons: int = 0
    shared_favicon_groups: int = 0
    same_subdomain_groups: int = 0
    llm_groups_accepted: int = 0
    llm_groups_rejected: int = 0


@dataclass(frozen=True)
class FaviconDecision:
    """The decision-tree outcome for one shared-favicon group."""

    favicon: FaviconHash
    urls: Tuple[URL, ...]
    step: str  # "blocklist" | "same_subdomain" | "llm_company" | "llm_rejected"
    grouped: bool
    llm_reply: str = ""


@dataclass
class WebInferenceResult:
    """Everything the web module produced."""

    rr_clusters: List[Cluster] = field(default_factory=list)
    favicon_clusters: List[Cluster] = field(default_factory=list)
    final_url_of_asn: Dict[ASN, URL] = field(default_factory=dict)
    decisions: List[FaviconDecision] = field(default_factory=list)
    stats: WebInferenceStats = field(default_factory=WebInferenceStats)


class WebInferenceModule:
    """Runs the full §4.3 pipeline over one snapshot."""

    def __init__(
        self,
        scraper: HeadlessScraper,
        favicon_api: FaviconAPI,
        client: ChatClient,
        config: Optional[BorgesConfig] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._scraper = scraper
        self._favicons = favicon_api
        self._client = client
        self._config = (config or BorgesConfig()).validate()
        self._tracer = tracer
        self._registry = registry

    @property
    def _spans(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def _metrics(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def run(self, pdb: PDBSnapshot, favicons: bool = True) -> WebInferenceResult:
        """Run scraping + R&R matching, and the favicon stage unless
        *favicons* is False (the pipeline disables it when the feature is
        off, sparing the classifier's LLM calls)."""
        result = WebInferenceResult()
        stats = result.stats

        final_of_asn, scrape_stats = self.scrape_urls(pdb)
        result.final_url_of_asn = final_of_asn
        for name, value in scrape_stats.items():
            setattr(stats, name, value)

        # -- R&R: group by final URL (§4.3.2) ------------------------------
        with self._spans.span("feature.rr") as span:
            by_final, stats.blocked_final_urls = self.rr_grouping(final_of_asn)
            result.rr_clusters = [
                frozenset(asns) for asns in by_final.values()
            ]
            span.set_attribute("clusters", len(result.rr_clusters))
            span.set_attribute("blocked_final_urls", stats.blocked_final_urls)

        # -- favicons (§4.3.3) ------------------------------------------------
        if favicons:
            with self._spans.span("feature.favicons") as span:
                clusters, decisions, favicon_stats = self.favicon_stage(by_final)
                result.favicon_clusters = clusters
                result.decisions.extend(decisions)
                for name in _FAVICON_STAT_FIELDS:
                    setattr(stats, name, getattr(favicon_stats, name))
                span.set_attribute("clusters", len(result.favicon_clusters))
                span.set_attribute(
                    "shared_favicon_groups", stats.shared_favicon_groups
                )
        return result

    # -- DAG-facing phases ---------------------------------------------------
    #
    # The stage DAG runs the three §4.3 phases as separate, individually
    # cached stages (scrape → rr, scrape → favicons), so each one is also
    # exposed as a standalone method.  ``run`` above composes them for
    # direct module users.

    def scrape_urls(
        self, pdb: PDBSnapshot
    ) -> Tuple[Dict[ASN, URL], Dict[str, int]]:
        """Resolve every PDB website to its final URL (the shared stage)."""
        with self._spans.span("web.scrape") as span:
            url_to_asns: Dict[str, List[ASN]] = {}
            nets_with_website = 0
            for net in pdb.nets_with_websites():
                nets_with_website += 1
                url_to_asns.setdefault(net.website.strip(), []).append(net.asn)

            final_of_asn: Dict[ASN, URL] = {}
            reachable = 0
            for raw_url, asns in sorted(url_to_asns.items()):
                scrape = self._scraper.resolve(raw_url)
                if not scrape.ok or not scrape.final_url:
                    continue
                reachable += 1
                for asn in asns:
                    final_of_asn[asn] = scrape.final_url
            stats = {
                "nets_with_website": nets_with_website,
                "unique_urls": len(url_to_asns),
                "reachable_urls": reachable,
                "unique_final_urls": len(set(final_of_asn.values())),
            }
            span.set_attribute("unique_urls", stats["unique_urls"])
            span.set_attribute("reachable_urls", stats["reachable_urls"])
        return final_of_asn, stats

    def rr_grouping(
        self, final_of_asn: Dict[ASN, URL]
    ) -> Tuple[Dict[URL, List[ASN]], int]:
        """Group ASNs by final URL after the Appendix-D.2 blocklist.

        Returns the grouping plus the blocked-URL count.  Cheap pure
        dictionary work, so the favicon stage recomputes it from the
        scrape artifact rather than depending on the rr stage.
        """
        by_final: Dict[URL, List[ASN]] = {}
        blocked = 0
        for asn, final_url in sorted(final_of_asn.items()):
            if self._config.apply_blocklists and is_blocked_final_url(final_url):
                blocked += 1
                self._metrics.counter(
                    "web_blocklist_rejections_total",
                    "URLs dropped by the Appendix-D blocklists",
                    list="final_url",
                ).inc()
                continue
            by_final.setdefault(final_url, []).append(asn)
        return by_final, blocked

    def favicon_stage(
        self, by_final: Dict[URL, List[ASN]]
    ) -> Tuple[List[Cluster], List[FaviconDecision], WebInferenceStats]:
        """The §4.3.3 decision tree over one R&R grouping."""
        scratch = WebInferenceResult()
        clusters = self._favicon_stage(by_final, scratch, scratch.stats)
        return clusters, scratch.decisions, scratch.stats

    # -- favicon decision tree (Fig. 6) -------------------------------------

    def _favicon_stage(
        self,
        by_final: Dict[URL, List[ASN]],
        result: WebInferenceResult,
        stats: WebInferenceStats,
    ) -> List[Cluster]:
        groups = self._favicons.group_by_favicon(sorted(by_final))
        stats.favicons_fetched = sum(len(urls) for urls in groups.values())
        stats.unique_favicons = len(groups)
        clusters: List[Cluster] = []
        for digest in sorted(groups):
            urls = groups[digest]
            if len(urls) < 2:
                continue
            stats.shared_favicon_groups += 1
            clusters.extend(
                self._decide_group(digest, urls, by_final, result, stats)
            )
        return clusters

    def _decide_group(
        self,
        digest: FaviconHash,
        urls: Tuple[URL, ...],
        by_final: Dict[URL, List[ASN]],
        result: WebInferenceResult,
        stats: WebInferenceStats,
    ) -> List[Cluster]:
        """Apply the Fig. 6 decision tree to one shared-favicon group."""
        clusters: List[Cluster] = []

        # Step 0: blocklist — mainstream-platform brands never group.
        if self._config.apply_blocklists:
            kept = tuple(u for u in urls if not is_blocked_brand(u))
            if len(kept) < len(urls):
                self._metrics.counter(
                    "web_blocklist_rejections_total",
                    "URLs dropped by the Appendix-D blocklists",
                    list="brand",
                ).inc(len(urls) - len(kept))
                result.decisions.append(
                    FaviconDecision(
                        favicon=digest,
                        urls=tuple(u for u in urls if u not in kept),
                        step="blocklist",
                        grouped=False,
                    )
                )
            urls = kept
        if len(urls) < 2:
            return clusters

        # Step 1: identical favicon + identical brand token → same company.
        by_token: Dict[str, List[URL]] = {}
        for url in urls:
            by_token.setdefault(brand_label(url), []).append(url)
        leftovers: List[URL] = []
        for token in sorted(by_token):
            token_urls = by_token[token]
            if len(token_urls) >= 2:
                stats.same_subdomain_groups += 1
                clusters.append(self._urls_to_cluster(token_urls, by_final))
                result.decisions.append(
                    FaviconDecision(
                        favicon=digest,
                        urls=tuple(token_urls),
                        step="same_subdomain",
                        grouped=True,
                    )
                )
            else:
                leftovers.extend(token_urls)

        # Step 2: differing tokens → LLM classifier over the whole group.
        if not self._config.favicon_llm_step or len(urls) < 2 or not leftovers:
            return clusters
        verdict_reply, is_company = self._classify(digest, urls)
        if is_company:
            stats.llm_groups_accepted += 1
            clusters.append(self._urls_to_cluster(list(urls), by_final))
            result.decisions.append(
                FaviconDecision(
                    favicon=digest, urls=tuple(urls), step="llm_company",
                    grouped=True, llm_reply=verdict_reply,
                )
            )
        else:
            stats.llm_groups_rejected += 1
            result.decisions.append(
                FaviconDecision(
                    favicon=digest, urls=tuple(urls), step="llm_rejected",
                    grouped=False, llm_reply=verdict_reply,
                )
            )
        return clusters

    def _classify(
        self, digest: FaviconHash, urls: Sequence[URL]
    ) -> Tuple[str, bool]:
        record = self._favicons.fetch(urls[0])
        if record is None:
            return "", False
        messages = render_classifier_messages(list(urls), record.content)
        response = self._client.chat(messages)
        try:
            verdict = parse_classifier_reply(response.content)
        except LLMResponseError as exc:
            _LOG.warning("unparsable classifier reply for %s: %s", digest, exc)
            return response.content, False
        return verdict.answer, verdict.is_company

    @staticmethod
    def _urls_to_cluster(
        urls: Sequence[URL], by_final: Dict[URL, List[ASN]]
    ) -> Cluster:
        members: Set[ASN] = set()
        for url in urls:
            members.update(by_final.get(url, ()))
        return frozenset(members)
