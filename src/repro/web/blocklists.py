"""The manually curated blocklists of Appendix D.

Two lists, used at different stages:

* :data:`SUBDOMAIN_BLOCKLIST` (Table 10) — brand tokens excluded when the
  favicon decision tree compares "subdomains" (§4.3.3 step 1).
* :data:`FINAL_URL_BLOCKLIST` (Table 11) — registrable domains excluded
  from final-URL matching (§4.3.2): mainstream platforms small operators
  point their PDB ``website`` at.
"""

from __future__ import annotations

from typing import FrozenSet

from .url import brand_label, registrable_domain

#: Appendix D.1, Table 10 — blocked brand tokens for subdomain comparison.
SUBDOMAIN_BLOCKLIST: FrozenSet[str] = frozenset(
    {
        "myspace",
        "github",
        "he",
        "facebook",
        "instagram",
        "linkedin",
        "bgp",  # bgp.tools
        "oracle",
        "discord",
        "peeringdb",
    }
)

#: Appendix D.2, Table 11 — blocked registrable domains for final-URL
#: matching.
FINAL_URL_BLOCKLIST: FrozenSet[str] = frozenset(
    {
        "example.com",
        "github.com",
        "linkedin.com",
        "facebook.com",
        "discord.com",
        # The universe generator also plants these platform hosts, which
        # fall under the same "mainstream communication channel" rule:
        "instagram.com",
        "peeringdb.com",
        "bgp.tools",
    }
)


def is_blocked_final_url(url: str) -> bool:
    """True if *url*'s registrable domain is on the final-URL blocklist."""
    try:
        return registrable_domain(url) in FINAL_URL_BLOCKLIST
    except Exception:
        return True  # unparsable URLs are never grouping evidence


def is_blocked_brand(url: str) -> bool:
    """True if *url*'s brand token is on the subdomain blocklist."""
    try:
        return brand_label(url) in SUBDOMAIN_BLOCKLIST
    except Exception:
        return True
