"""Snapshot lifecycle: load mapping generations and hot-swap atomically.

The store holds at most one *active* :class:`Snapshot` — an immutable
:class:`~repro.serve.index.MappingIndex` plus its generation number and
provenance.  Swapping installs a fully-built replacement with a single
reference assignment, so a reader either sees the old generation or the
new one, never a half-loaded index.  Replaced generations are parked on a
retiring list until every reader lease against them is released
(:meth:`SnapshotStore.drain`), mirroring how a production serving tier
drains connections before dropping a shard.

Generations can come from four sources: an in-memory pipeline result, an
``OrgMapping`` JSON file, a CAIDA-format release file (the round-trip
``borges release`` → ``borges serve``), or a merge-stage artifact in the
content-addressed :class:`~repro.core.artifacts.ArtifactStore`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..core.artifacts import ArtifactStore
from ..core.mapping import OrgMapping
from ..errors import DataError, NoSnapshotError, ReproError
from ..logutil import get_logger
from ..obs import get_registry
from .index import MappingIndex

_LOG = get_logger("serve.store")


@dataclass
class Snapshot:
    """One loaded generation of the mapping, with reader accounting."""

    index: MappingIndex
    generation: int
    source: str
    label: str
    _readers: int = field(default=0, repr=False)
    _drained: threading.Event = field(
        default_factory=threading.Event, repr=False
    )

    def describe(self) -> Dict[str, object]:
        return {
            "generation": self.generation,
            "source": self.source,
            "label": self.label,
            **self.index.stats(),
        }


class SnapshotStore:
    """Atomic holder of the active mapping generation.

    Readers call :meth:`current` (one attribute read — atomic under the
    GIL) or take a lease with :meth:`acquire` when they need the same
    generation across several lookups.  Writers call one of the
    ``load_from_*`` methods; each builds the index *outside* the lock and
    installs it with :meth:`swap`.
    """

    def __init__(self, registry=None) -> None:
        self._registry = registry or get_registry()
        self._lock = threading.Lock()
        self._active: Optional[Snapshot] = None
        self._retiring: List[Snapshot] = []
        self._next_generation = 1
        #: True when the last swap attempt failed and an older generation
        #: is still being served (the degraded/stale read path).
        self.stale = False

    # -- reader side -------------------------------------------------------

    def current(self) -> Snapshot:
        snapshot = self._active
        if snapshot is None:
            raise NoSnapshotError()
        return snapshot

    def current_or_none(self) -> Optional[Snapshot]:
        return self._active

    def acquire(self) -> "_Lease":
        """A context-managed reader lease on the active generation."""
        with self._lock:
            snapshot = self._active
            if snapshot is None:
                raise NoSnapshotError()
            snapshot._readers += 1
        return _Lease(self, snapshot)

    def _release(self, snapshot: Snapshot) -> None:
        with self._lock:
            snapshot._readers -= 1
            if snapshot._readers <= 0 and snapshot is not self._active:
                snapshot._drained.set()

    # -- writer side -------------------------------------------------------

    def swap(self, index: MappingIndex, source: str, label: str) -> Snapshot:
        """Install *index* as the active generation; returns the snapshot."""
        with self._lock:
            snapshot = Snapshot(
                index=index,
                generation=self._next_generation,
                source=source,
                label=label,
            )
            self._next_generation += 1
            previous = self._active
            self._active = snapshot
            if previous is not None:
                if previous._readers <= 0:
                    previous._drained.set()
                else:
                    self._retiring.append(previous)
            self.stale = False
        self._registry.counter(
            "serve_snapshot_swaps_total", "Snapshot generations installed"
        ).inc()
        self._registry.gauge(
            "serve_snapshot_generation", "Active snapshot generation"
        ).set(snapshot.generation)
        _LOG.info(
            "snapshot generation %d installed from %s (%s)",
            snapshot.generation, source, label,
        )
        return snapshot

    def try_swap(
        self, loader: Callable[[], Snapshot], label: str = ""
    ) -> Optional[Snapshot]:
        """Attempt a swap; on failure keep serving the old generation.

        This is the resilience boundary of the read path: a corrupt
        release file or unreadable artifact must not take down a serving
        process that already holds a good generation.  The failure is
        counted, the store is marked ``stale``, and ``None`` is returned.
        """
        try:
            return loader()
        except (ReproError, OSError, ValueError, KeyError) as exc:
            with self._lock:
                self.stale = self._active is not None
            self._registry.counter(
                "serve_snapshot_swap_failures_total",
                "Snapshot loads that failed (old generation kept)",
            ).inc()
            _LOG.warning("snapshot swap failed (%s): %s", label, exc)
            return None

    def drain(self, timeout: float = 5.0) -> int:
        """Wait for retired generations to lose their last reader.

        Returns the number of generations actually retired; generations
        still held past *timeout* stay on the retiring list.
        """
        with self._lock:
            pending = list(self._retiring)
        deadline = time.monotonic() + timeout
        retired = 0
        for snapshot in pending:
            remaining = max(0.0, deadline - time.monotonic())
            if snapshot._drained.wait(remaining):
                retired += 1
                with self._lock:
                    if snapshot in self._retiring:
                        self._retiring.remove(snapshot)
        if retired:
            self._registry.counter(
                "serve_snapshots_retired_total",
                "Replaced generations fully drained of readers",
            ).inc(retired)
        return retired

    # -- loaders -----------------------------------------------------------

    def load_from_mapping(
        self,
        mapping: OrgMapping,
        whois=None,
        pdb=None,
        label: str = "in-memory",
    ) -> Snapshot:
        index = MappingIndex.build(mapping, whois=whois, pdb=pdb)
        return self.swap(index, source="mapping", label=label)

    def load_from_mapping_file(self, path: Union[str, Path]) -> Snapshot:
        path = Path(path)
        index = MappingIndex.build(OrgMapping.load(path))
        return self.swap(index, source="mapping-file", label=str(path))

    def load_from_release_file(self, path: Union[str, Path]) -> Snapshot:
        """Load a CAIDA-format as2org release file as a generation.

        This closes the publish/serve round trip: the file written by
        ``borges release`` (or CAIDA's own AS2Org file) groups ASNs by
        ``organizationId``; each group becomes one served organization.
        """
        from ..whois import load_as2org_file

        path = Path(path)
        whois = load_as2org_file(path)
        mapping = OrgMapping(
            universe=whois.asns(),
            clusters=[
                frozenset(members) for members in whois.members().values()
            ],
            method="release",
            org_names={asn: whois.org_name_of(asn) for asn in whois.asns()},
        )
        index = MappingIndex.build(mapping, whois=whois)
        return self.swap(index, source="release-file", label=str(path))

    def load_from_artifact_store(
        self, store: ArtifactStore, fingerprint: str
    ) -> Snapshot:
        """Load a merge-stage artifact (an encoded ``OrgMapping``)."""
        artifact = store.get("merge", fingerprint)
        if artifact is None:
            raise DataError(f"no merge artifact with fingerprint {fingerprint}")
        mapping = OrgMapping.from_json(artifact.payload)  # type: ignore[arg-type]
        index = MappingIndex.build(mapping)
        return self.swap(
            index, source="artifact", label=f"merge:{fingerprint[:12]}"
        )

    # -- accounting --------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            active = self._active
            retiring = len(self._retiring)
        out: Dict[str, object] = {
            "stale": self.stale,
            "retiring_generations": retiring,
        }
        if active is not None:
            out["active"] = active.describe()
        return out


class _Lease:
    """Context manager pinning one snapshot for a reader."""

    __slots__ = ("_store", "snapshot")

    def __init__(self, store: SnapshotStore, snapshot: Snapshot) -> None:
        self._store = store
        self.snapshot = snapshot

    def __enter__(self) -> Snapshot:
        return self.snapshot

    def __exit__(self, *exc_info: object) -> None:
        self._store._release(self.snapshot)
