"""Canonical JSON digests shared by datasets and the artifact store.

The stage DAG content-addresses every artifact by a fingerprint over
(config slice, dataset digests, upstream fingerprints).  For that to be
stable across processes, every participant — dataset snapshots, config
slices, stage payloads — must hash to the same bytes for the same
logical content.  This module is the single canonicalisation point:
dataclasses, sets, tuples and bytes are coerced to a deterministic JSON
form, then hashed with SHA-256.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any


def jsonable(value: Any) -> Any:
    """Coerce *value* to a JSON-serialisable, deterministic form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (frozenset, set)):
        return sorted(jsonable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, bytes):
        return "bytes:" + value.hex()
    return value


def canonical_json(value: Any) -> str:
    """The canonical compact JSON encoding used for hashing and storage."""
    return json.dumps(jsonable(value), sort_keys=True, separators=(",", ":"))


def stable_digest(value: Any) -> str:
    """SHA-256 hex digest of *value*'s canonical JSON form."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def dataset_digest(obj: Any) -> str:
    """Best-effort content digest of a dataset object.

    Objects exposing ``content_digest()`` (WHOIS datasets, PeeringDB
    snapshots, the simulated web) get a true content address; anything
    else falls back to a per-object token, which keeps caching correct
    (never a false hit) at the cost of cross-process reuse.
    """
    method = getattr(obj, "content_digest", None)
    if callable(method):
        return str(method())
    return "volatile:%x" % id(obj)
