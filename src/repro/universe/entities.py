"""Ground-truth entities of the synthetic Internet.

An :class:`Org` is the *real-world* organization (what Borges is trying
to recover).  Each org owns one or more :class:`Brand` units — branded,
usually per-country subsidiaries — and each brand unit operates one or
more ASNs.  Registries only ever see brand-level records; the org level
is the truth the mapping systems approximate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from ..errors import DataError
from ..types import ASN, Cluster, CountryCode


class OrgCategory(enum.Enum):
    """Business category, driving §6's access/transit/content analyses."""

    ACCESS = "access"
    TRANSIT = "transit"
    CONTENT = "content"
    ENTERPRISE = "enterprise"


@dataclass
class Brand:
    """A branded subsidiary: one operating unit of an organization.

    ``website_host`` is the brand's landing page host (e.g.
    ``www.vega.com.br``); ``favicon_brand`` is the logo identity its site
    serves (shared across an org when branding is unified).
    """

    brand_id: str
    name: str
    org_id: str
    country: CountryCode
    cctld: str
    asns: List[ASN] = field(default_factory=list)
    website_host: str = ""
    favicon_brand: str = ""
    #: Brand acquired in an M&A event (its site may redirect to parent).
    acquired: bool = False
    #: Language its operators write PDB notes in.
    language: str = "en"

    @property
    def primary_asn(self) -> ASN:
        if not self.asns:
            raise DataError(f"brand {self.brand_id} has no ASNs")
        return min(self.asns)

    @property
    def website_url(self) -> str:
        return f"https://{self.website_host}/" if self.website_host else ""


@dataclass
class Org:
    """A ground-truth organization: the unit θ should recover."""

    org_id: str
    name: str
    category: OrgCategory
    region: str
    brands: List[Brand] = field(default_factory=list)
    is_conglomerate: bool = False
    is_hypergiant: bool = False
    #: Brand token subsidiaries share in domains, when branding is unified.
    brand_token: str = ""

    @property
    def asns(self) -> List[ASN]:
        result: List[ASN] = []
        for brand in self.brands:
            result.extend(brand.asns)
        return sorted(result)

    @property
    def countries(self) -> Set[CountryCode]:
        return {b.country for b in self.brands}

    @property
    def size(self) -> int:
        return len(self.asns)

    def brand_of(self, asn: ASN) -> Brand:
        for brand in self.brands:
            if asn in brand.asns:
                return brand
        raise DataError(f"AS{asn} not in org {self.org_id}")


@dataclass
class GroundTruth:
    """The complete true state: all orgs, indexed every useful way."""

    orgs: Dict[str, Org] = field(default_factory=dict)

    def add(self, org: Org) -> Org:
        if org.org_id in self.orgs:
            raise DataError(f"duplicate org_id {org.org_id}")
        self.orgs[org.org_id] = org
        return org

    def __len__(self) -> int:
        return len(self.orgs)

    def all_orgs(self) -> Iterator[Org]:
        for org_id in sorted(self.orgs):
            yield self.orgs[org_id]

    def all_brands(self) -> Iterator[Brand]:
        for org in self.all_orgs():
            for brand in org.brands:
                yield brand

    def all_asns(self) -> List[ASN]:
        result: List[ASN] = []
        for org in self.all_orgs():
            result.extend(org.asns)
        return sorted(result)

    def org_of_asn(self, asn: ASN) -> Org:
        index = self._asn_index()
        try:
            return self.orgs[index[asn]]
        except KeyError:
            raise DataError(f"AS{asn} belongs to no ground-truth org") from None

    def brand_of_asn(self, asn: ASN) -> Brand:
        return self.org_of_asn(asn).brand_of(asn)

    def true_clusters(self) -> List[Cluster]:
        """The ground-truth partition of all ASNs by real organization."""
        return [frozenset(org.asns) for org in self.all_orgs() if org.asns]

    def true_siblings(self, asn: ASN) -> FrozenSet[ASN]:
        return frozenset(self.org_of_asn(asn).asns)

    def are_siblings(self, a: ASN, b: ASN) -> bool:
        index = self._asn_index()
        return a in index and b in index and index[a] == index[b]

    def conglomerates(self) -> List[Org]:
        return [o for o in self.all_orgs() if o.is_conglomerate]

    def hypergiants(self) -> List[Org]:
        return [o for o in self.all_orgs() if o.is_hypergiant]

    def by_category(self, category: OrgCategory) -> List[Org]:
        return [o for o in self.all_orgs() if o.category is category]

    def stats(self) -> Dict[str, float]:
        orgs = list(self.all_orgs())
        sizes = [o.size for o in orgs if o.size]
        return {
            "orgs": float(len(orgs)),
            "asns": float(sum(sizes)),
            "conglomerates": float(sum(1 for o in orgs if o.is_conglomerate)),
            "hypergiants": float(sum(1 for o in orgs if o.is_hypergiant)),
            "mean_asns_per_org": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "max_asns_per_org": float(max(sizes)) if sizes else 0.0,
        }

    # -- internals ---------------------------------------------------------

    _asn_cache: Optional[Dict[ASN, str]] = None

    def _asn_index(self) -> Dict[ASN, str]:
        if self._asn_cache is None:
            index: Dict[ASN, str] = {}
            for org in self.all_orgs():
                for asn in org.asns:
                    if asn in index:
                        raise DataError(
                            f"AS{asn} owned by both {index[asn]} and {org.org_id}"
                        )
                    index[asn] = org.org_id
            self._asn_cache = index
        return self._asn_cache

    def invalidate_index(self) -> None:
        """Call after mutating orgs/brands post-construction."""
        self._asn_cache = None
