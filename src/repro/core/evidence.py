"""Evidence tracking: *why* two ASNs ended up in the same organization.

A production AS-to-Org mapping is only trustworthy if each merge can be
audited.  This module reconstructs, from one pipeline run, the evidence
hypergraph — every feature assertion ("these ASNs share WHOIS org X",
"these landed on final URL Y", "AS A's notes name AS B a sibling") — and
answers sibling queries with the *chain of evidence* connecting two ASNs
(a shortest path over evidence hyperedges).

Used by ``borges explain`` and the audit examples.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from ..peeringdb import PDBSnapshot
from ..types import ASN
from ..whois import WhoisDataset
from .pipeline import BorgesResult


@dataclass(frozen=True)
class Evidence:
    """One feature assertion grouping a set of ASNs."""

    feature: str
    asns: FrozenSet[ASN]
    detail: str

    def describe(self) -> str:
        members = ", ".join(f"AS{a}" for a in sorted(self.asns)[:6])
        suffix = "..." if len(self.asns) > 6 else ""
        return f"[{self.feature}] {self.detail} ({members}{suffix})"


def collect_evidence(
    result: BorgesResult,
    whois: WhoisDataset,
    pdb: PDBSnapshot,
) -> List[Evidence]:
    """Reconstruct every evidence assertion behind one pipeline run."""
    evidence: List[Evidence] = []

    for org_id, members in sorted(whois.members().items()):
        if len(members) > 1:
            evidence.append(
                Evidence(
                    feature="oid_w",
                    asns=frozenset(members),
                    detail=(
                        f"shared WHOIS org {org_id} "
                        f"({whois.orgs[org_id].name})"
                    ),
                )
            )

    if "oid_p" in result.features:
        for org_id, members in sorted(pdb.org_members().items()):
            if len(members) > 1:
                evidence.append(
                    Evidence(
                        feature="oid_p",
                        asns=frozenset(members),
                        detail=(
                            f"shared PeeringDB org {org_id} "
                            f"({pdb.orgs[org_id].name})"
                        ),
                    )
                )

    for record in result.ner_results:
        if record.siblings:
            evidence.append(
                Evidence(
                    feature="notes_aka",
                    asns=record.cluster,
                    detail=(
                        f"AS{record.asn}'s notes/aka report siblings "
                        f"{', '.join(f'AS{a}' for a in record.siblings)}"
                    ),
                )
            )

    web = result.web_result
    if web is not None:
        by_final: Dict[str, List[ASN]] = {}
        for asn, final_url in sorted(web.final_url_of_asn.items()):
            by_final.setdefault(final_url, []).append(asn)
        rr_clusters = {frozenset(c) for c in web.rr_clusters}
        for final_url, members in sorted(by_final.items()):
            if len(members) > 1 and frozenset(members) in rr_clusters:
                evidence.append(
                    Evidence(
                        feature="rr",
                        asns=frozenset(members),
                        detail=f"websites resolve to the same final URL {final_url}",
                    )
                )
        url_to_asns = by_final
        for decision in web.decisions:
            if not decision.grouped:
                continue
            members: Set[ASN] = set()
            for url in decision.urls:
                members.update(url_to_asns.get(url, ()))
            if len(members) > 1:
                step = (
                    "identical favicon + brand token"
                    if decision.step == "same_subdomain"
                    else f"identical favicon, LLM verdict {decision.llm_reply!r}"
                )
                evidence.append(
                    Evidence(
                        feature="favicons",
                        asns=frozenset(members),
                        detail=f"{step} across {', '.join(decision.urls[:4])}",
                    )
                )
    return evidence


class MappingExplainer:
    """Answers "why are A and B siblings?" over collected evidence."""

    def __init__(self, evidence: Sequence[Evidence]) -> None:
        self._evidence = list(evidence)
        self._by_asn: Dict[ASN, List[int]] = {}
        for index, item in enumerate(self._evidence):
            for asn in item.asns:
                self._by_asn.setdefault(asn, []).append(index)

    def evidence_for(self, asn: ASN) -> List[Evidence]:
        """Every assertion that mentions *asn*."""
        return [self._evidence[i] for i in self._by_asn.get(asn, ())]

    def why_siblings(self, a: ASN, b: ASN) -> Optional[List[Evidence]]:
        """A shortest evidence chain connecting *a* to *b*, or ``None``.

        BFS over the bipartite ASN↔evidence graph; the returned list is
        the sequence of assertions whose transitive closure links the two
        (one element when a single assertion names both).
        """
        if a == b:
            return []
        if a not in self._by_asn or b not in self._by_asn:
            return None
        # BFS from a; states are ASNs, transitions are evidence items.
        parent_edge: Dict[ASN, int] = {}
        parent_node: Dict[ASN, ASN] = {}
        visited_edges: Set[int] = set()
        queue: deque = deque([a])
        seen: Set[ASN] = {a}
        while queue:
            node = queue.popleft()
            for edge_index in self._by_asn.get(node, ()):
                if edge_index in visited_edges:
                    continue
                visited_edges.add(edge_index)
                for neighbour in self._evidence[edge_index].asns:
                    if neighbour in seen:
                        continue
                    seen.add(neighbour)
                    parent_edge[neighbour] = edge_index
                    parent_node[neighbour] = node
                    if neighbour == b:
                        return self._unwind(b, parent_edge, parent_node)
                    queue.append(neighbour)
        return None

    def _unwind(
        self,
        target: ASN,
        parent_edge: Dict[ASN, int],
        parent_node: Dict[ASN, ASN],
    ) -> List[Evidence]:
        chain: List[Evidence] = []
        node = target
        while node in parent_edge:
            chain.append(self._evidence[parent_edge[node]])
            node = parent_node[node]
        chain.reverse()
        return chain

    def stats(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for item in self._evidence:
            counts[item.feature] = counts.get(item.feature, 0) + 1
        counts["total"] = len(self._evidence)
        return counts

    # -- confidence ------------------------------------------------------

    def direct_support(self, a: ASN, b: ASN) -> List[Evidence]:
        """Assertions naming *both* ASNs (single-hop evidence)."""
        return [
            self._evidence[i]
            for i in self._by_asn.get(a, ())
            if b in self._evidence[i].asns
        ]

    def confidence(self, a: ASN, b: ASN) -> str:
        """Audit grade for one sibling pair.

        * ``"corroborated"`` — two or more independent features assert the
          pair directly (the strongest merges: Lumen via OID_P *and* R&R
          *and* notes);
        * ``"single-source"`` — exactly one feature asserts it directly;
        * ``"transitive"`` — only connected through intermediate ASNs;
        * ``"unsupported"`` — no evidence chain at all (not siblings, or
          siblings only by WHOIS singleton identity).
        """
        direct = self.direct_support(a, b)
        features = {item.feature for item in direct}
        if len(features) >= 2:
            return "corroborated"
        if len(features) == 1:
            return "single-source"
        chain = self.why_siblings(a, b)
        if chain:
            return "transitive"
        return "unsupported"
