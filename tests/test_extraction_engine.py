"""Unit tests for the semantic extraction engine (the simulated LLM's NER).

These exercise the engine directly (no prompt round trip) over the text
patterns the paper discusses: sibling prose, upstream listings, decoy
numbers, multilingual cues, bullet-list scoping.
"""

from repro.llm.extraction_engine import (
    contains_number,
    extract_siblings,
    find_all_numbers,
    find_asn_tokens,
)


class TestTokenFinding:
    def test_as_prefixed_forms(self):
        text = "AS3356, AS 209, ASN 3320, AS-15133, asn: 22822"
        assert find_asn_tokens(text) == [3356, 209, 3320, 15133, 22822]

    def test_bare_numbers_not_asn_tokens(self):
        assert find_asn_tokens("call +1 555 0123 founded 1998") == []

    def test_reserved_asns_skipped(self):
        assert find_asn_tokens("AS23456 AS64512") == []

    def test_find_all_numbers(self):
        assert find_all_numbers("a1b22c333") == [1, 22, 333]

    def test_contains_number(self):
        assert contains_number("AS3356")
        assert not contains_number("no digits here")
        assert not contains_number("")


class TestSiblingExtraction:
    def test_english_sibling_prose(self):
        result = extract_siblings(
            3320,
            "Our sibling networks: AS6855 (Slovak Telekom) and AS5391.",
            "",
        )
        assert result.asns == (5391, 6855)

    def test_own_asn_excluded(self):
        result = extract_siblings(3320, "We are AS3320, sibling of AS6855.", "")
        assert result.asns == (6855,)

    def test_upstream_listing_rejected(self):
        # The Maxihost pattern (Appendix B).
        notes = (
            "We connect directly with the following ISPs,\n"
            "- Algar (AS16735)\n"
            "- Sparkle (AS6762)\n"
            "- Cogent (AS174)"
        )
        assert extract_siblings(262287, notes, "").asns == ()

    def test_mixed_notes_keep_only_siblings(self):
        notes = (
            "Part of the Examplecom group: AS71000 is our sister network.\n"
            "\n"
            "IP transit from our upstream providers:\n"
            "- AS3356\n"
            "- AS174"
        )
        assert extract_siblings(71001, notes, "").asns == (71000,)

    def test_blank_line_resets_bullet_context(self):
        notes = (
            "Our upstream carriers:\n"
            "- AS3356\n"
            "\n"
            "- AS6939"  # orphan bullet after blank: neutral context
        )
        result = extract_siblings(1, notes, "")
        assert 3356 not in result.asns
        assert 6939 in result.asns

    def test_aka_numbers_are_siblings(self):
        result = extract_siblings(22822, "", "LLNW, formerly AS15133")
        assert result.asns == (15133,)

    def test_aka_with_negative_cue_rejected(self):
        result = extract_siblings(1, "", "upstream of AS3356")
        assert result.asns == ()

    def test_phone_and_year_ignored(self):
        notes = "NOC phone: +1 555 0123. Founded in 1998."
        assert extract_siblings(1, notes, "").asns == ()

    def test_max_prefix_ignored(self):
        assert extract_siblings(1, "Maximum prefixes accepted: 500", "").asns == ()

    def test_as_in_as_out_sections_ignored(self):
        notes = "as-in: 64512 as-out: 64513 AS3356"
        assert extract_siblings(1, notes, "").asns == ()

    def test_neutral_as_mention_reported(self):
        result = extract_siblings(1, "Also operating network AS71000.", "")
        assert result.asns == (71000,)

    def test_reasoning_populated(self):
        result = extract_siblings(1, "sister network AS71000", "")
        assert result.reasoning
        result_empty = extract_siblings(1, "nothing numeric", "")
        assert result_empty.reasoning == "no sibling ASNs reported"


class TestMultilingual:
    def test_spanish(self):
        notes = "Somos parte del grupo Claro. También operamos AS71001."
        assert extract_siblings(1, notes, "").asns == (71001,)

    def test_portuguese(self):
        notes = "Esta rede pertence ao grupo X; subsidiária junto com AS71002."
        assert extract_siblings(1, notes, "").asns == (71002,)

    def test_german(self):
        notes = "Wir sind Teil der Telekom Gruppe. Wir betreiben auch AS71003."
        assert extract_siblings(1, notes, "").asns == (71003,)

    def test_french(self):
        notes = "Filiale de Orange. Nous exploitons également AS71004."
        assert extract_siblings(1, notes, "").asns == (71004,)

    def test_indonesian(self):
        notes = "Kami adalah bagian dari grup Telkom. Kami juga AS71005."
        assert extract_siblings(1, notes, "").asns == (71005,)

    def test_spanish_upstreams_rejected(self):
        notes = "Estamos conectado a los siguientes proveedores: AS3356, AS174"
        assert extract_siblings(1, notes, "").asns == ()
